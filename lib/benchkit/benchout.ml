(* Machine-readable bench artifacts: BENCH_<ID>.json files recording, per
   experiment row, the *logical* quantities (integers: ops, bytes, crypto-op
   counters, virtual-time latency) separately from the *physical* ones
   (floats: wall-clock nanoseconds). Logical quantities are deterministic
   functions of the protocol and the fixed seeds, so CI compares them
   exactly against a committed baseline; wall-times vary with the machine
   and are reported, never gated. No JSON library is available in this
   environment, so the emitter/parser below handle exactly the subset the
   emitter produces. *)

type row = {
  label : string;
  ints : (string * int) list; (* logical metrics: compared exactly *)
  floats : (string * float) list; (* wall-times etc.: reported only *)
}

type doc = { id : string; title : string; mode : string; rows : row list }

let schema_version = 1

let fast =
  match Sys.getenv_opt "BENCH_FAST" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let mode = if fast then "fast" else "full"
let dir () = Option.value (Sys.getenv_opt "BENCH_DIR") ~default:"bench"

let path_for id = Filename.concat (dir ()) ("BENCH_" ^ String.uppercase_ascii id ^ ".json")

(* ---------------- emit ---------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_json f =
  (* NaN/inf are not JSON; record them as null (read back as nan). *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else Printf.sprintf "%.3f" f

let render doc =
  let buf = Buffer.create 1024 in
  let pair_i (k, v) = Printf.sprintf "\"%s\": %d" (escape k) v in
  let pair_f (k, v) = Printf.sprintf "\"%s\": %s" (escape k) (float_json v) in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"schema_version\": %d,\n" schema_version);
  Buffer.add_string buf (Printf.sprintf "  \"id\": \"%s\",\n" (escape doc.id));
  Buffer.add_string buf (Printf.sprintf "  \"title\": \"%s\",\n" (escape doc.title));
  Buffer.add_string buf (Printf.sprintf "  \"mode\": \"%s\",\n" (escape doc.mode));
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"label\": \"%s\", \"ints\": {%s}, \"floats\": {%s}}"
           (escape r.label)
           (String.concat ", " (List.map pair_i r.ints))
           (String.concat ", " (List.map pair_f r.floats))))
    doc.rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let write ~id ~title rows =
  let doc = { id; title; mode; rows } in
  let d = dir () in
  (if not (Sys.file_exists d) then try Unix.mkdir d 0o755 with Unix.Unix_error _ -> ());
  let path = path_for id in
  let oc = open_out path in
  output_string oc (render doc);
  close_out oc;
  Printf.printf "[bench] wrote %s (%d rows, mode %s)\n%!" path (List.length rows) mode

(* ---------------- parse ---------------- *)

(* Tiny recursive-descent parser for the emitted subset: objects, arrays,
   strings, integers, floats, null. *)

exception Parse of string

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Null

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'
          | Some '\\' -> Buffer.add_char buf '\\'
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'u' ->
              (* Exactly four hex digits, validated by hand: int_of_string
                 would raise (escaping as an exception, not a parse error)
                 and accepts underscores. *)
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex_digit c =
                match c with
                | '0' .. '9' -> Char.code c - Char.code '0'
                | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
                | _ -> fail "bad \\u escape"
              in
              let code = ref 0 in
              for i = 0 to 3 do
                code := (!code * 16) + hex_digit s.[!pos + i]
              done;
              pos := !pos + 3;
              Buffer.add_char buf (Char.chr (!code land 0xff))
          | _ -> fail "bad escape");
          advance ();
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if start = !pos then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "expected null"
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let valid_json s =
  match parse_json s with _ -> Ok () | exception Parse e -> Error e

let doc_of_json j =
  let field name = function
    | Obj members -> (
        match List.assoc_opt name members with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %S" name))
    | _ -> Error "expected an object"
  in
  let str = function Str s -> Ok s | _ -> Error "expected a string" in
  let int_of = function
    | Num f when Float.is_integer f -> Ok (int_of_float f)
    | Num _ -> Error "expected an integer"
    | _ -> Error "expected a number"
  in
  let float_of = function Num f -> Ok f | Null -> Ok nan | _ -> Error "expected a number" in
  let ( let* ) = Result.bind in
  let* version = Result.bind (field "schema_version" j) int_of in
  if version <> schema_version then
    Error (Printf.sprintf "unsupported schema_version %d (expected %d)" version schema_version)
  else
    let* id = Result.bind (field "id" j) str in
    let* title = Result.bind (field "title" j) str in
    let* mode = Result.bind (field "mode" j) str in
    let* rows_j = field "rows" j in
    let parse_row r =
      let* label = Result.bind (field "label" r) str in
      let pairs conv = function
        | Obj members ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                let* v = conv v in
                Ok ((k, v) :: acc))
              (Ok []) members
            |> Result.map List.rev
        | _ -> Error "expected an object of metrics"
      in
      let* ints = Result.bind (field "ints" r) (pairs int_of) in
      let* floats = Result.bind (field "floats" r) (pairs float_of) in
      Ok { label; ints; floats }
    in
    match rows_j with
    | Arr rs ->
        let* rows =
          List.fold_left
            (fun acc r ->
              let* acc = acc in
              let* row = parse_row r in
              Ok (row :: acc))
            (Ok []) rs
          |> Result.map List.rev
        in
        Ok { id; title; mode; rows }
    | _ -> Error "rows: expected an array"

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> ( try doc_of_json (parse_json s) with Parse e -> Error e)

(* ---------------- compare ---------------- *)

(* Logical comparison: ids, row labels, and every integer metric must match
   exactly. Floats (wall-times) are never compared — that is the point of
   the int/float split. *)
let check ~baseline ~current =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  if baseline.id <> current.id then err "id mismatch: baseline %S, current %S" baseline.id current.id;
  let blabels = List.map (fun r -> r.label) baseline.rows in
  let clabels = List.map (fun r -> r.label) current.rows in
  if blabels <> clabels then
    err "row labels differ: baseline [%s], current [%s]" (String.concat "; " blabels)
      (String.concat "; " clabels)
  else
    List.iter2
      (fun b c ->
        let keys l = List.map fst l in
        if keys b.ints <> keys c.ints then
          err "row %S: metric keys differ: baseline [%s], current [%s]" b.label
            (String.concat "; " (keys b.ints))
            (String.concat "; " (keys c.ints))
        else
          List.iter2
            (fun (k, bv) (_, cv) ->
              if bv <> cv then err "row %S: %s changed: baseline %d, current %d" b.label k bv cv)
            b.ints c.ints)
      baseline.rows current.rows;
  match List.rev !errs with [] -> Ok () | es -> Error es
