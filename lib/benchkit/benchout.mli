(** Machine-readable bench artifacts.

    Each instrumented experiment writes [BENCH_<ID>.json] next to its human
    table, so every PR leaves a perf trajectory to regress against. A row
    separates {e logical} metrics — integers: ops, bytes, crypto-op
    counters, virtual-time latency, all deterministic under the fixed
    seeds — from {e physical} ones — floats: wall-clock nanoseconds, which
    vary by machine. {!check} compares the logical metrics exactly and
    ignores the physical ones; that is the CI gating rule.

    Environment: [BENCH_DIR] overrides the output directory (default
    [bench]); [BENCH_FAST=1] asks experiments to cut wall-time sampling —
    logical metrics are unaffected, so a fast run still checks cleanly
    against a full-run baseline. *)

type row = {
  label : string;
  ints : (string * int) list;  (** logical metrics: compared exactly *)
  floats : (string * float) list;  (** wall-times etc.: reported only *)
}

type doc = { id : string; title : string; mode : string; rows : row list }

val schema_version : int

val fast : bool
(** [BENCH_FAST] is set: reduce measurement iterations, keep logical work. *)

val mode : string
(** ["fast"] or ["full"]; recorded in the artifact. *)

val path_for : string -> string
(** [path_for id] is [<BENCH_DIR>/BENCH_<ID>.json]. *)

val write : id:string -> title:string -> row list -> unit
(** Write the artifact (creating the directory if needed) and print the
    path. *)

val load : string -> (doc, string) result
(** Parse an artifact; [Error] doubles as schema validation. *)

val valid_json : string -> (unit, string) result
(** Syntax-check a string against the JSON subset this module handles
    (objects, arrays, strings, numbers, null) — used by tests to validate
    emitted artifacts such as Chrome trace exports. *)

val check : baseline:doc -> current:doc -> (unit, string list) result
(** Exact comparison of ids, row labels, and integer metrics; floats are
    never compared. *)
