(* Benchmark harness: regenerates one table per figure/claim of the paper
   (see DESIGN.md section 4 and EXPERIMENTS.md for paper-vs-measured).

   The paper (ICDCS '93) is conceptual and reports no measurements, so each
   "figure" here is characterized by the quantities its protocol determines:
   messages and bytes on the simulated network, cryptographic operations,
   simulated latency, and measured CPU time of the pure operations
   (Bechamel, OLS over monotonic clock). Baselines from Section 5 (Sollins,
   Amoeba, DSSA, Grapevine) run under identical conditions. *)

module R = Restriction

(* ------------------------------------------------------------------ *)
(* measurement utilities                                              *)
(* ------------------------------------------------------------------ *)

(* CPU nanoseconds per call, via Bechamel's OLS estimator. BENCH_FAST cuts
   the sampling quota (noisier wall-times, identical logical metrics). *)
let ns_per_op name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let quota = Time.second (if Benchout.fast then 0.02 else 0.25) in
  let cfg = Benchmark.cfg ~limit:300 ~quota ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* Canonicalize by key before inspecting: Hashtbl fold order is resize
     history, and even a singleton today could silently become "first of
     several in hash order" when Bechamel grows the result table. *)
  let results =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) res []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  match results with
  | [ (_, est) ] -> ( match Analyze.OLS.estimates est with Some (ns :: _) -> ns | _ -> nan)
  | _ -> nan

(* Wall-clock per call for heavyweight operations (key generation) where
   Bechamel's sampling would take too long. *)
let wall_ns ?(iters = 3) f =
  let iters = if Benchout.fast then 1 else iters in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters

(* Run [f] with a counting tally (no simulated net needed) and return its
   result plus the sorted per-counter totals — the logical crypto-op counts
   the JSON artifacts gate on. *)
let with_tally f =
  let tbl = Hashtbl.create 8 in
  let tally name =
    Hashtbl.replace tbl name (1 + Option.value (Hashtbl.find_opt tbl name) ~default:0)
  in
  let result = f tally in
  let counts = List.of_seq (Hashtbl.to_seq tbl) in
  (result, List.sort (fun (a, _) (b, _) -> compare a b) counts)

let fmt_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

(* Run [f] once and report (result, metric deltas, virtual time elapsed). *)
let metered net f =
  let m = Sim.Net.metrics net in
  let before = Sim.Metrics.snapshot m in
  let t0 = Sim.Net.now net in
  let result = f () in
  let deltas = Sim.Metrics.diff ~before ~after:(Sim.Metrics.snapshot m) in
  (result, deltas, Sim.Net.now net - t0)

let delta key deltas = Option.value (List.assoc_opt key deltas) ~default:0

let crypto_ops deltas =
  List.fold_left
    (fun acc (k, v) ->
      if String.length k >= 7 && String.sub k 0 7 = "crypto." then acc + v else acc)
    0 deltas

let print_table title columns rows =
  Printf.printf "\n### %s\n\n" title;
  let widths =
    List.mapi
      (fun i c ->
        List.fold_left (fun w r -> max w (String.length (List.nth r i))) (String.length c) rows)
      columns
  in
  let line cells =
    let padded = List.map2 (fun w c -> Printf.sprintf "%-*s" w c) widths cells in
    Printf.printf "| %s |\n" (String.concat " | " padded)
  in
  line columns;
  Printf.printf "|%s|\n" (String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths));
  List.iter line rows;
  print_newline ()

let section title = Printf.printf "\n==================== %s ====================\n%!" title

(* Rollup of one traced phase: per span kind, count / messages / bytes /
   crypto ops summed over span self costs. Clears the collector so the next
   phase starts empty. *)
let span_phase_rows ~layer net =
  match Sim.Net.spans net with
  | None -> []
  | Some c ->
      let spans = Sim.Span.spans c in
      Sim.Span.clear c;
      let order = ref [] in
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun s ->
          let k = s.Sim.Span.sp_kind in
          if not (Hashtbl.mem tbl k) then begin
            Hashtbl.add tbl k (ref 0, ref 0, ref 0, ref 0);
            order := k :: !order
          end;
          let n, msgs, bytes, cops = Hashtbl.find tbl k in
          incr n;
          List.iter
            (fun (name, v) ->
              if name = "net.messages" then msgs := !msgs + v
              else if name = "net.bytes" then bytes := !bytes + v
              else if String.length name >= 7 && String.sub name 0 7 = "crypto." then
                cops := !cops + v)
            s.Sim.Span.sp_costs)
        spans;
      List.rev_map
        (fun k ->
          let n, msgs, bytes, cops = Hashtbl.find tbl k in
          [ layer; k; string_of_int !n; string_of_int !msgs; string_of_int !bytes;
            string_of_int !cops ])
        !order

let expect_ok = function Ok v -> v | Error e -> failwith e

(* ------------------------------------------------------------------ *)
(* F1: the restricted proxy structure (Figure 1)                      *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "F1 (Fig 1): restricted proxy grant/verify vs restriction count";
  let drbg = Crypto.Drbg.create ~seed:"f1" in
  let alice = Principal.make ~realm:"r" "alice" in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let base_blob = "base" in
  let open_base blob =
    if blob = base_blob then
      Ok
        {
          Verifier.base_client = alice;
          base_session_key = session_key;
          base_expires = max_int;
          base_restrictions = [];
        }
    else Error "unknown base"
  in
  let measured =
    List.map
      (fun n ->
        let restrictions =
          List.init n (fun i ->
              R.Authorized [ { R.target = Printf.sprintf "obj%d" i; ops = [ "read" ] } ])
        in
        let grant () =
          Proxy.grant_conventional ~drbg ~now:0 ~expires:max_int ~grantor:alice ~session_key
            ~base:base_blob ~restrictions
        in
        let proxy = grant () in
        let chain =
          match proxy.Proxy.flavor with Proxy.Conventional c -> c | _ -> assert false
        in
        let pres_bytes =
          String.length (Wire.encode (Proxy.presentation_to_wire (Proxy.presentation proxy)))
        in
        let grant_ns = ns_per_op (Printf.sprintf "grant/%d" n) (fun () -> grant ()) in
        let verify_ns =
          ns_per_op (Printf.sprintf "verify/%d" n) (fun () ->
              Verifier.verify_conventional ~open_base ~now:1 chain)
        in
        let verified, crypto =
          with_tally (fun tally -> Verifier.verify_conventional ~open_base ~tally ~now:1 chain)
        in
        (match verified with
        | Ok v -> assert (List.length v.Verifier.restrictions = n)
        | Error e -> failwith e);
        (n, pres_bytes, crypto, grant_ns, verify_ns))
      [ 0; 1; 2; 4; 8; 16; 32 ]
  in
  print_table "F1: conventional proxy cost vs number of restrictions"
    [ "restrictions"; "presentation bytes"; "grant CPU"; "verify CPU" ]
    (List.map
       (fun (n, bytes, _, grant_ns, verify_ns) ->
         [ string_of_int n; string_of_int bytes; fmt_ns grant_ns; fmt_ns verify_ns ])
       measured);
  Benchout.write ~id:"f1" ~title:"Fig 1: conventional proxy grant/verify vs restriction count"
    (List.map
       (fun (n, bytes, crypto, grant_ns, verify_ns) ->
         {
           Benchout.label = Printf.sprintf "restrictions=%d" n;
           ints = (("restrictions", n) :: ("presentation_bytes", bytes) :: crypto);
           floats = [ ("grant_ns", grant_ns); ("verify_ns", verify_ns) ];
         })
       measured)

(* ------------------------------------------------------------------ *)
(* F2: the layering of security services (Figure 2)                   *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  section "F2 (Fig 2): per-request cost as security services stack";
  let usd = "usd" in
  let rows = ref [] in
  (* Each layer's metered request also runs traced; the span rollup shows
     which protocol step each message/byte/crypto-op lands in. *)
  let phase_rows = ref [] in
  let start_phase net = Option.iter Sim.Span.clear (Sim.Net.spans net) in
  let end_phase layer net = phase_rows := !phase_rows @ span_phase_rows ~layer net in
  let add name deltas latency =
    rows :=
      [ name;
        string_of_int (delta "net.messages" deltas);
        string_of_int (delta "net.bytes" deltas);
        string_of_int (crypto_ops deltas);
        Printf.sprintf "%d us" latency ]
      :: !rows
  in

  (* Layer 1: authentication only — an owner reads her file. *)
  let w = World.create ~seed:"f2a" () in
  Sim.Net.enable_tracing w.World.net;
  let alice, _ = World.enrol w "alice" in
  let fs_name, fs_key = World.enrol w "fs" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let fs = File_server.create w.World.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"f" "data";
  let tgt = World.login w alice in
  let creds = World.credentials_for w ~tgt fs_name in
  start_phase w.World.net;
  let _, deltas, lat =
    metered w.World.net (fun () -> expect_ok (File_server.read w.World.net ~creds ~path:"f" ()))
  in
  add "authentication only (owner reads)" deltas lat;
  end_phase "authentication" w.World.net;

  (* Layer 2: + authorization via a capability. *)
  let bob, _ = World.enrol w "bob" in
  let cap =
    expect_ok
      (Capability.mint_via_kdc w.World.net ~kdc:w.World.kdc_name ~tgt ~end_server:fs_name
         ~target:"f" ~ops:[ "read" ] ())
  in
  let tgt_b = World.login w bob in
  let creds_b = World.credentials_for w ~tgt:tgt_b fs_name in
  start_phase w.World.net;
  let _, deltas, lat =
    metered w.World.net (fun () ->
        let p =
          File_server.attach w.World.net ~proxy:cap ~server:fs_name ~operation:"read" ~path:"f"
        in
        expect_ok (File_server.read w.World.net ~creds:creds_b ~proxies:[ p ] ~path:"f" ()))
  in
  add "+ authorization (capability presentation)" deltas lat;
  end_phase "+ authorization" w.World.net;

  (* Layer 3: + group membership. *)
  let w = World.create ~seed:"f2c" () in
  Sim.Net.enable_tracing w.World.net;
  let dave, _ = World.enrol w "dave" in
  let groups_p, groups_key = World.enrol w "groups" in
  let fs_name, fs_key = World.enrol w "fs" in
  let gsrv =
    expect_ok
      (Group_server.create w.World.net ~me:groups_p ~my_key:groups_key ~kdc:w.World.kdc_name ())
  in
  Group_server.install gsrv;
  Group_server.add_member gsrv ~group:"staff" dave;
  let acl = Acl.create () in
  Acl.add acl ~target:"*"
    {
      Acl.subject = Acl.Group (Group_server.group_name gsrv "staff");
      rights = [];
      restrictions = [];
    };
  let fs = File_server.create w.World.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"f" "data";
  let tgt_d = World.login w dave in
  let creds_g = World.credentials_for w ~tgt:tgt_d groups_p in
  let gproxy =
    expect_ok
      (Group_server.request_membership_proxy w.World.net ~creds:creds_g ~group:"staff"
         ~end_server:fs_name ())
  in
  let creds_fs = World.credentials_for w ~tgt:tgt_d fs_name in
  start_phase w.World.net;
  let _, deltas, lat =
    metered w.World.net (fun () ->
        let gp =
          Guard.present ~proxy:gproxy ~time:(World.now w) ~server:fs_name
            ~operation:"assert-membership" ~target:"staff" ()
        in
        expect_ok (File_server.read w.World.net ~creds:creds_fs ~group_proxies:[ gp ] ~path:"f" ()))
  in
  add "+ group service (membership proxy)" deltas lat;
  end_phase "+ group" w.World.net;

  (* Layer 4: + accounting — a print job paid by check, cross-bank. *)
  let w = World.create ~seed:"f2d" () in
  Sim.Net.enable_tracing w.World.net;
  let carol, _, carol_rsa = World.enrol_pk w "carol" in
  let bank1_p, bank1_key, bank1_rsa = World.enrol_pk w "bank1" in
  let bank2_p, bank2_key, bank2_rsa = World.enrol_pk w "bank2" in
  let printer_p, printer_key, printer_rsa = World.enrol_pk w "printer" in
  let lookup = World.lookup w in
  let bank1 =
    expect_ok
      (Accounting_server.create w.World.net ~me:bank1_p ~my_key:bank1_key ~kdc:w.World.kdc_name
         ~signing_key:bank1_rsa ~lookup ())
  in
  let bank2 =
    expect_ok
      (Accounting_server.create w.World.net ~me:bank2_p ~my_key:bank2_key ~kdc:w.World.kdc_name
         ~signing_key:bank2_rsa ~lookup ())
  in
  Accounting_server.install bank1;
  Accounting_server.install bank2;
  let tgt_c = World.login w carol in
  let creds_cb = World.credentials_for w ~tgt:tgt_c bank2_p in
  expect_ok (Accounting_server.open_account w.World.net ~creds:creds_cb ~name:"carol");
  ignore (Ledger.mint (Accounting_server.ledger bank2) ~name:"carol" ~currency:usd 10_000);
  let tgt_p = World.login w printer_p in
  let creds_pb = World.credentials_for w ~tgt:tgt_p bank1_p in
  expect_ok (Accounting_server.open_account w.World.net ~creds:creds_pb ~name:"printer");
  let printer =
    expect_ok
      (Print_server.create w.World.net ~me:printer_p ~my_key:printer_key ~kdc:w.World.kdc_name
         ~bank:bank1_p ~account:"printer" ~signing_key:printer_rsa ~lookup ())
  in
  Print_server.install printer;
  let creds_cp = World.credentials_for w ~tgt:tgt_c printer_p in
  let write_check amount =
    Check.write ~drbg:(Sim.Net.drbg w.World.net) ~now:(World.now w)
      ~expires:(World.now w + (24 * World.hour)) ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account bank2 "carol") ~payee:printer_p ~currency:usd ~amount
      ()
  in
  (* Warm the printer's credential cache so we meter the steady state. *)
  ignore
    (expect_ok
       (Print_server.print w.World.net ~creds:creds_cp ~document:"warm" ~content:"x"
          ~check:(write_check 10) ()));
  let check = write_check 10 in
  start_phase w.World.net;
  let _, deltas, lat =
    metered w.World.net (fun () ->
        expect_ok
          (Print_server.print w.World.net ~creds:creds_cp ~document:"job" ~content:"x" ~check ()))
  in
  add "+ accounting (print job paid by cross-bank check)" deltas lat;
  end_phase "+ accounting" w.World.net;

  print_table "F2: one request at each service layer"
    [ "configuration"; "messages"; "bytes"; "crypto ops"; "sim latency" ]
    (List.rev !rows);

  print_table "F2b: span rollup — where each layer's cost lands"
    [ "layer"; "span kind"; "count"; "messages"; "bytes"; "crypto ops" ]
    !phase_rows

(* ------------------------------------------------------------------ *)
(* F3: the authorization protocol (Figure 3) vs alternatives          *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section "F3 (Fig 3): authorization protocol, proxies vs online queries";
  let batch_sizes = [ 1; 10; 100 ] in

  (* Scheme A: the Fig-3 authorization-server proxy — acquired once,
     verified offline on every request. *)
  let run_authz n =
    let w = World.create ~seed:("f3a" ^ string_of_int n) () in
    let carol, _ = World.enrol w "carol" in
    let authz_p, authz_key = World.enrol w "authz" in
    let app_p, app_key = World.enrol w "app" in
    let db = Acl.create () in
    Acl.add db ~target:"job"
      { Acl.subject = Acl.Principal_is carol; rights = [ "run" ]; restrictions = [] };
    let srv =
      expect_ok
        (Authz_server.create w.World.net ~me:authz_p ~my_key:authz_key ~kdc:w.World.kdc_name
           ~database:db ())
    in
    Authz_server.install srv;
    let acl = Acl.create () in
    Acl.add acl ~target:"*"
      { Acl.subject = Acl.Principal_is authz_p; rights = []; restrictions = [] };
    let guard = Guard.create w.World.net ~me:app_p ~my_key:app_key ~acl () in
    let tgt = World.login w carol in
    let _, deltas, _ =
      metered w.World.net (fun () ->
          let creds = World.credentials_for w ~tgt authz_p in
          let proxy =
            expect_ok
              (Authz_server.request_authorization w.World.net ~creds ~end_server:app_p
                 ~target:"job" ~operation:"run" ())
          in
          for _ = 1 to n do
            let p =
              Guard.present ~proxy ~time:(World.now w) ~server:app_p ~operation:"run"
                ~target:"job" ()
            in
            ignore
              (expect_ok
                 (Guard.decide guard ~operation:"run" ~target:"job" ~presenter:carol
                    ~proxies:[ p ] ()))
          done)
    in
    delta "net.messages" deltas
  in

  (* Scheme B: Grapevine — the end-server queries the registry on every
     request. *)
  let run_grapevine n =
    let w = World.create ~seed:("f3b" ^ string_of_int n) () in
    let carol = Principal.make ~realm:"r" "carol" in
    let reg_p = Principal.make ~realm:"r" "registry" in
    let reg = Grapevine.create w.World.net ~name:reg_p in
    Grapevine.install reg;
    Grapevine.add_member reg ~group:"authorized" carol;
    let _, deltas, _ =
      metered w.World.net (fun () ->
          for _ = 1 to n do
            match
              Grapevine.is_member w.World.net ~server:reg_p ~caller:"app" ~group:"authorized"
                carol
            with
            | Ok true -> ()
            | Ok false | Error _ -> failwith "grapevine lookup failed"
          done)
    in
    delta "net.messages" deltas
  in

  let rows =
    List.map
      (fun (name, run) ->
        let counts = List.map run batch_sizes in
        name
        :: List.map2
             (fun n c -> Printf.sprintf "%d (%.1f/req)" c (float_of_int c /. float_of_int n))
             batch_sizes counts)
      [ ("authorization-server proxy (Fig 3)", run_authz);
        ("Grapevine-style online query", run_grapevine) ]
  in
  print_table "F3: authorization messages vs number of requests (acquisition included)"
    ([ "scheme" ] @ List.map (fun n -> Printf.sprintf "N=%d" n) batch_sizes)
    rows

(* ------------------------------------------------------------------ *)
(* F4: cascaded proxies (Figure 4) vs Sollins                         *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section "F4 (Fig 4): cascade verification vs chain depth; Sollins baseline";
  let drbg = Crypto.Drbg.create ~seed:"f4" in
  let alice = Principal.make ~realm:"r" "alice" in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let open_base blob =
    if blob = "base" then
      Ok
        {
          Verifier.base_client = alice;
          base_session_key = session_key;
          base_expires = max_int;
          base_restrictions = [];
        }
    else Error "unknown"
  in
  let alice_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let lookup p = if Principal.equal p alice then Some alice_rsa.Crypto.Rsa.pub else None in

  (* Sollins: a fresh world per depth to keep metrics clean. *)
  let sollins_run depth =
    let net = Sim.Net.create ~seed:("f4s" ^ string_of_int depth) () in
    let as_p = Principal.make ~realm:"r" "as" in
    let srv = Sollins.create net ~name:as_p in
    Sollins.install srv;
    let parties =
      List.init (depth + 1) (fun i -> Principal.make ~realm:"r" (Printf.sprintf "p%d" i))
    in
    let keys = List.map (fun p -> (p, Sollins.register srv p)) parties in
    let key_of p = List.assq p keys in
    let passport = ref None in
    List.iteri
      (fun i p ->
        if i < depth then begin
          let next = List.nth parties (i + 1) in
          let restrictions = [ Printf.sprintf "r%d" i ] in
          passport :=
            Some
              (match !passport with
              | None -> Sollins.initiate ~key:(key_of p) ~from_:p ~to_:next ~restrictions
              | Some pp -> Sollins.extend ~key:(key_of p) ~from_:p ~to_:next ~restrictions pp)
        end)
      parties;
    let passport = Option.get !passport in
    let _, deltas, _ =
      metered net (fun () ->
          expect_ok (Sollins.verify_online net ~server:as_p ~caller:"end-server" passport))
    in
    let ns =
      ns_per_op
        (Printf.sprintf "sollins/%d" depth)
        (fun () -> Sollins.verify_online net ~server:as_p ~caller:"end-server" passport)
    in
    (delta "net.messages" deltas, ns)
  in

  let build_pk_chain depth =
    let pk =
      ref
        (Proxy.grant_pk ~drbg ~now:0 ~expires:max_int ~grantor:alice ~grantor_key:alice_rsa
           ~proxy_bits:512
           ~restrictions:[ R.Quota ("step", 0) ]
           ())
    in
    for i = 2 to depth do
      pk :=
        expect_ok
          (Proxy.restrict_pk ~drbg ~now:0 ~expires:max_int ~proxy_bits:512
             ~restrictions:[ R.Quota ("step" ^ string_of_int i, i) ]
             !pk)
    done;
    match !pk.Proxy.flavor with Proxy.Public_key c -> c | _ -> assert false
  in
  let measured =
    List.map
      (fun depth ->
        (* conventional chain of [depth] certificates *)
        let conv =
          ref
            (Proxy.grant_conventional ~drbg ~now:0 ~expires:max_int ~grantor:alice ~session_key
               ~base:"base" ~restrictions:[ R.Quota ("step", 0) ])
        in
        for i = 2 to depth do
          conv :=
            expect_ok
              (Proxy.restrict_conventional ~drbg ~now:0 ~expires:max_int
                 ~restrictions:[ R.Quota ("step" ^ string_of_int i, i) ]
                 !conv)
        done;
        let conv_chain =
          match !conv.Proxy.flavor with Proxy.Conventional c -> c | _ -> assert false
        in
        let conv_bytes =
          String.length (Wire.encode (Proxy.presentation_to_wire (Proxy.presentation !conv)))
        in
        let conv_ns =
          ns_per_op
            (Printf.sprintf "conv/%d" depth)
            (fun () -> Verifier.verify_conventional ~open_base ~now:1 conv_chain)
        in
        let _, conv_crypto =
          with_tally (fun tally ->
              expect_ok (Verifier.verify_conventional ~open_base ~tally ~now:1 conv_chain))
        in
        (* public-key chain *)
        let pk_certs = build_pk_chain depth in
        let pk_ns =
          ns_per_op (Printf.sprintf "pk/%d" depth) (fun () ->
              Verifier.verify_pk ~lookup ~now:1 pk_certs)
        in
        let _, pk_crypto =
          with_tally (fun tally ->
              expect_ok (Verifier.verify_pk ~lookup ~tally ~now:1 pk_certs))
        in
        let sollins_msgs, sollins_ns = sollins_run depth in
        (depth, conv_bytes, conv_crypto, conv_ns, pk_crypto, pk_ns, sollins_msgs, sollins_ns))
      [ 1; 2; 4; 8; 16 ]
  in
  print_table "F4: verification cost vs cascade depth"
    [ "depth"; "conv verify CPU"; "conv bytes"; "pk verify CPU"; "proxy msgs";
      "sollins verify CPU"; "sollins msgs" ]
    (List.map
       (fun (depth, conv_bytes, _, conv_ns, _, pk_ns, sollins_msgs, sollins_ns) ->
         [ string_of_int depth;
           fmt_ns conv_ns;
           string_of_int conv_bytes;
           fmt_ns pk_ns;
           "0";
           fmt_ns sollins_ns;
           string_of_int sollins_msgs ])
       measured);

  (* Re-presentation study: the same depth-8 chain hits the same end-server
     N times. Uncached, every presentation re-pays all 8 RSA verifications;
     with the shared verification cache the chain's signatures are paid
     once and every later presentation is k cache hits. *)
  let cache_depth = 8 and presentations = 16 in
  let certs = build_pk_chain cache_depth in
  let _, uncached =
    with_tally (fun tally ->
        for _ = 1 to presentations do
          ignore (expect_ok (Verifier.verify_pk ~lookup ~tally ~now:1 certs))
        done)
  in
  let cache = Verify_cache.create () in
  let _, cached =
    with_tally (fun tally ->
        for _ = 1 to presentations do
          ignore (expect_ok (Verifier.verify_pk ~lookup ~tally ~cache ~now:1 certs))
        done)
  in
  let count k l = Option.value (List.assoc_opt k l) ~default:0 in
  let uncached_rsa = count "crypto.rsa_verify" uncached in
  let cached_rsa = count "crypto.rsa_verify" cached in
  let uncached_ns =
    ns_per_op "pk/8-uncached" (fun () -> Verifier.verify_pk ~lookup ~now:1 certs)
  in
  let cached_ns =
    ns_per_op "pk/8-cached" (fun () -> Verifier.verify_pk ~lookup ~cache ~now:1 certs)
  in
  print_table
    (Printf.sprintf "F4b: depth-%d chain presented %d times, verification cache" cache_depth
       presentations)
    [ "path"; "rsa verifies"; "cache hits"; "cache misses"; "verify CPU (warm)" ]
    [ [ "uncached"; string_of_int uncached_rsa; "-"; "-"; fmt_ns uncached_ns ];
      [ "cached";
        string_of_int cached_rsa;
        string_of_int (count "verify_cache.hits" cached);
        string_of_int (count "verify_cache.misses" cached);
        fmt_ns cached_ns ] ];

  (* F4c: the same cascade exercised end to end with causal tracing on.
     Span counts and attributed costs are deterministic under the fixed
     seed, so they join the gated integers. *)
  let traced = Tracing.run_f4 ~seed:"bench-f4" ~requests:4 ~depth:5 () in
  let tspans = traced.Tracing.spans in
  let kind_count k = List.length (List.filter (fun s -> s.Sim.Span.sp_kind = k) tspans) in
  let attributed = Sim.Span.cost_total tspans in
  let attr name = Option.value (List.assoc_opt name attributed) ~default:0 in
  let rerun = Tracing.run_f4 ~seed:"bench-f4" ~requests:4 ~depth:5 () in
  let deterministic = Sim.Span.to_jsonl tspans = Sim.Span.to_jsonl rerun.Tracing.spans in
  let costs_match = attributed = traced.Tracing.delta in
  print_table "F4c: traced cascade (requests=4, depth=5) — spans and attributed costs"
    [ "quantity"; "value" ]
    [ [ "spans"; string_of_int (List.length tspans) ];
      [ "actors"; string_of_int (List.length (Sim.Span.actors tspans)) ];
      [ "max depth"; string_of_int (Sim.Span.max_depth tspans) ];
      [ "verify.cert spans"; string_of_int (kind_count "verify.cert") ];
      [ "rpc attempts (incl. retry)"; string_of_int (kind_count "rpc.attempt") ];
      [ "attributed rsa verifies"; string_of_int (attr "crypto.rsa_verify") ];
      [ "attributed cache hits"; string_of_int (attr "verify_cache.hits") ];
      [ "attributed messages"; string_of_int (attr "net.messages") ];
      [ "self costs = global diff"; (if costs_match then "yes" else "NO") ];
      [ "rerun byte-identical"; (if deterministic then "yes" else "NO") ] ];

  Benchout.write ~id:"f4" ~title:"Fig 4: cascade verification vs chain depth; Sollins baseline"
    (List.map
       (fun (depth, conv_bytes, conv_crypto, conv_ns, pk_crypto, pk_ns, sollins_msgs, sollins_ns)
       ->
         {
           Benchout.label = Printf.sprintf "depth=%d" depth;
           ints =
             (("depth", depth) :: ("conv_bytes", conv_bytes) :: ("sollins_msgs", sollins_msgs)
             :: (List.map (fun (k, v) -> ("conv." ^ k, v)) conv_crypto
                @ List.map (fun (k, v) -> ("pk." ^ k, v)) pk_crypto));
           floats =
             [ ("conv_verify_ns", conv_ns); ("pk_verify_ns", pk_ns);
               ("sollins_verify_ns", sollins_ns) ];
         })
       measured
    @ [ {
          Benchout.label =
            Printf.sprintf "cascade depth=%d presented x%d uncached" cache_depth presentations;
          ints = (("depth", cache_depth) :: ("presentations", presentations) :: uncached);
          floats = [ ("verify_ns_warm", uncached_ns) ];
        };
        {
          Benchout.label =
            Printf.sprintf "cascade depth=%d presented x%d cached" cache_depth presentations;
          ints = (("depth", cache_depth) :: ("presentations", presentations) :: cached);
          floats = [ ("verify_ns_warm", cached_ns) ];
        };
        {
          Benchout.label = "traced cascade requests=4 depth=5";
          ints =
            [ ("requests", traced.Tracing.requests); ("ok", traced.Tracing.ok);
              ("spans", List.length tspans);
              ("actors", List.length (Sim.Span.actors tspans));
              ("max_depth", Sim.Span.max_depth tspans);
              ("span.verify_cert", kind_count "verify.cert");
              ("span.rpc_attempt", kind_count "rpc.attempt");
              ("span.rpc_call", kind_count "rpc.call");
              ("span.guard_decide", kind_count "guard.decide");
              ("span.resolver_lookup", kind_count "resolver.lookup");
              ("attr.rsa_verify", attr "crypto.rsa_verify");
              ("attr.cache_hits", attr "verify_cache.hits");
              ("attr.net_messages", attr "net.messages");
              ("costs_match", if costs_match then 1 else 0);
              ("jsonl_deterministic", if deterministic then 1 else 0) ];
          floats = [];
        } ])

(* ------------------------------------------------------------------ *)
(* F5: check clearing (Figure 5) vs intermediaries; Amoeba baseline   *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section "F5 (Fig 5): check clearing vs intermediary accounting servers";
  let usd = "usd" in
  let clear_with_intermediaries k certified =
    let w = World.create ~seed:(Printf.sprintf "f5-%d-%b" k certified) () in
    let carol, _, carol_rsa = World.enrol_pk w "carol" in
    let shop, _, shop_rsa = World.enrol_pk w "shop" in
    let lookup = World.lookup w in
    let mk_bank name =
      let p, key, rsa = World.enrol_pk w name in
      let b =
        expect_ok
          (Accounting_server.create w.World.net ~me:p ~my_key:key ~kdc:w.World.kdc_name
             ~signing_key:rsa ~lookup ())
      in
      Accounting_server.install b;
      (p, b)
    in
    let payee_bank_p, _payee_bank = mk_bank "payee-bank" in
    let drawee_p, drawee = mk_bank "drawee-bank" in
    let hops = List.init k (fun i -> mk_bank (Printf.sprintf "hop%d" i)) in
    (* Route payee-bank -> hop0 -> ... -> drawee. *)
    let chain = (payee_bank_p, Option.get (Some _payee_bank)) :: hops in
    let rec wire_routes = function
      | (_, b) :: ((next_p, _) :: _ as rest) ->
          Accounting_server.set_route b ~drawee:drawee_p ~next_hop:next_p ();
          wire_routes rest
      | [ _ ] | [] -> ()
    in
    wire_routes chain;
    let tgt_c = World.login w carol in
    let creds_cd = World.credentials_for w ~tgt:tgt_c drawee_p in
    expect_ok (Accounting_server.open_account w.World.net ~creds:creds_cd ~name:"carol");
    ignore (Ledger.mint (Accounting_server.ledger drawee) ~name:"carol" ~currency:usd 1_000);
    let tgt_s = World.login w shop in
    let creds_sb = World.credentials_for w ~tgt:tgt_s payee_bank_p in
    expect_ok (Accounting_server.open_account w.World.net ~creds:creds_sb ~name:"shop");
    let write_check amount =
      Check.write ~drbg:(Sim.Net.drbg w.World.net) ~now:(World.now w)
        ~expires:(World.now w + (24 * World.hour)) ~payor:carol ~payor_key:carol_rsa
        ~account:(Accounting_server.account drawee "carol") ~payee:shop ~currency:usd ~amount ()
    in
    (* Warm the inter-bank credential caches with a throwaway clearing so we
       meter steady-state clearing, not first-contact key exchange. *)
    ignore
      (expect_ok
         (Accounting_server.deposit w.World.net ~creds:creds_sb ~endorser_key:shop_rsa
            ~check:(write_check 1) ~to_account:"shop"));
    let check = write_check 100 in
    if certified then
      ignore (expect_ok (Accounting_server.certify w.World.net ~creds:creds_cd ~check));
    let _, deltas, lat =
      metered w.World.net (fun () ->
          expect_ok
            (Accounting_server.deposit w.World.net ~creds:creds_sb ~endorser_key:shop_rsa ~check
               ~to_account:"shop"))
    in
    [ (if certified then Printf.sprintf "%d (certified)" k else string_of_int k);
      string_of_int (delta "net.messages" deltas);
      string_of_int (delta "net.bytes" deltas);
      string_of_int (delta "accounting.endorsements" deltas);
      string_of_int (crypto_ops deltas);
      Printf.sprintf "%d us" lat ]
  in
  let rows =
    List.map (fun k -> clear_with_intermediaries k false) [ 0; 1; 2; 4; 8 ]
    @ [ clear_with_intermediaries 0 true ]
  in
  print_table "F5: clearing one 100-usd check"
    [ "intermediaries"; "messages"; "bytes"; "endorsements"; "crypto ops"; "sim latency" ]
    rows;

  (* Amoeba pre-pay baseline: one purchase = prepay + server balance check +
     withdraw. *)
  let net = Sim.Net.create ~seed:"f5-amoeba" () in
  let bank_p = Principal.make ~realm:"r" "amoeba-bank" in
  let bank = Amoeba_bank.create net ~name:bank_p in
  Amoeba_bank.install bank;
  Amoeba_bank.open_account bank "client";
  Amoeba_bank.open_account bank "server";
  Amoeba_bank.mint bank ~account:"client" ~currency:usd 1_000;
  let _, deltas, lat =
    metered net (fun () ->
        expect_ok
          (Amoeba_bank.transfer net ~bank:bank_p ~caller:"client" ~from_:"client" ~to_:"server"
             ~currency:usd ~amount:100);
        ignore
          (expect_ok
             (Amoeba_bank.balance net ~bank:bank_p ~caller:"server" ~account:"server"
                ~currency:usd));
        expect_ok
          (Amoeba_bank.withdraw net ~bank:bank_p ~caller:"server" ~account:"server" ~currency:usd
             ~amount:100))
  in
  print_table "F5 baseline: Amoeba pre-paid transfer (one purchase)"
    [ "scheme"; "messages"; "bytes"; "sim latency" ]
    [ [ "Amoeba pre-pay (pay before service)";
        string_of_int (delta "net.messages" deltas);
        string_of_int (delta "net.bytes" deltas);
        Printf.sprintf "%d us" lat ] ]

(* ------------------------------------------------------------------ *)
(* F6: public-key proxies (Figure 6) vs conventional                  *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  section "F6 (Fig 6): public-key vs conventional realization";
  let drbg = Crypto.Drbg.create ~seed:"f6" in
  let alice = Principal.make ~realm:"r" "alice" in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let open_base blob =
    if blob = "base" then
      Ok
        {
          Verifier.base_client = alice;
          base_session_key = session_key;
          base_expires = max_int;
          base_restrictions = [];
        }
    else Error "unknown"
  in
  let restrictions = [ R.Authorized [ { R.target = "obj"; ops = [ "read" ] } ] ] in
  let json_rows = ref [] in
  let emit label ints floats = json_rows := { Benchout.label; ints; floats } :: !json_rows in
  let conv_grant () =
    Proxy.grant_conventional ~drbg ~now:0 ~expires:max_int ~grantor:alice ~session_key
      ~base:"base" ~restrictions
  in
  let conv = conv_grant () in
  let conv_chain = match conv.Proxy.flavor with Proxy.Conventional c -> c | _ -> assert false in
  let conv_row =
    let grant_ns = ns_per_op "conv-grant" conv_grant in
    let verify_ns =
      ns_per_op "conv-verify" (fun () -> Verifier.verify_conventional ~open_base ~now:1 conv_chain)
    in
    let bytes =
      String.length (Wire.encode (Proxy.presentation_to_wire (Proxy.presentation conv)))
    in
    let _, crypto =
      with_tally (fun tally ->
          expect_ok (Verifier.verify_conventional ~open_base ~tally ~now:1 conv_chain))
    in
    emit "conventional" (("presentation_bytes", bytes) :: crypto)
      [ ("grant_ns", grant_ns); ("verify_ns", verify_ns) ];
    [ "conventional (HMAC/AEAD)";
      fmt_ns grant_ns;
      fmt_ns verify_ns;
      string_of_int bytes;
      "one end-server";
      "no" ]
  in
  (* Hybrid row: signed like public-key, but the proxy key is symmetric and
     sealed to one end-server — no per-proxy keypair generation. *)
  let hybrid_row =
    let grantor_key = Crypto.Rsa.generate drbg ~bits:512 in
    let end_server = Principal.make ~realm:"r" "server" in
    let server_key = Crypto.Rsa.generate drbg ~bits:512 in
    let lookup p = if Principal.equal p alice then Some grantor_key.Crypto.Rsa.pub else None in
    let grant () =
      match
        Proxy.grant_hybrid ~drbg ~now:0 ~expires:max_int ~grantor:alice ~grantor_key
          ~end_server ~end_server_pub:server_key.Crypto.Rsa.pub ~restrictions ()
      with
      | Ok p -> p
      | Error e -> failwith e
    in
    let proxy = grant () in
    let chain =
      match proxy.Proxy.flavor with Proxy.Hybrid (h, b) -> (h, b) | _ -> assert false
    in
    let grant_ns = ns_per_op "hybrid-grant" grant in
    let verify_ns =
      ns_per_op "hybrid-verify" (fun () ->
          Verifier.verify_hybrid ~lookup ~decrypt:(Crypto.Rsa.decrypt server_key) ~now:1 chain)
    in
    let bytes =
      String.length (Wire.encode (Proxy.presentation_to_wire (Proxy.presentation proxy)))
    in
    let _, crypto =
      with_tally (fun tally ->
          expect_ok
            (Verifier.verify_hybrid ~lookup ~decrypt:(Crypto.Rsa.decrypt server_key) ~tally
               ~now:1 chain))
    in
    emit "hybrid rsa-512" (("presentation_bytes", bytes) :: crypto)
      [ ("grant_ns", grant_ns); ("verify_ns", verify_ns) ];
    [ "hybrid RSA-512 (Sec 6.1)";
      fmt_ns grant_ns;
      fmt_ns verify_ns;
      string_of_int bytes;
      "one end-server";
      "signature only" ]
  in
  let pk_rows =
    List.map
      (fun bits ->
        let grantor_key = Crypto.Rsa.generate drbg ~bits in
        let lookup p =
          if Principal.equal p alice then Some grantor_key.Crypto.Rsa.pub else None
        in
        let grant () =
          Proxy.grant_pk ~drbg ~now:0 ~expires:max_int ~grantor:alice ~grantor_key
            ~proxy_bits:bits ~restrictions ()
        in
        let proxy = grant () in
        let certs = match proxy.Proxy.flavor with Proxy.Public_key c -> c | _ -> assert false in
        let grant_ns = wall_ns ~iters:3 grant in
        let verify_ns =
          ns_per_op (Printf.sprintf "pk-verify-%d" bits) (fun () ->
              Verifier.verify_pk ~lookup ~now:1 certs)
        in
        let bytes =
          String.length (Wire.encode (Proxy.presentation_to_wire (Proxy.presentation proxy)))
        in
        let _, crypto =
          with_tally (fun tally ->
              expect_ok (Verifier.verify_pk ~lookup ~tally ~now:1 certs))
        in
        emit
          (Printf.sprintf "public-key rsa-%d" bits)
          (("bits", bits) :: ("presentation_bytes", bytes) :: crypto)
          [ ("grant_ns", grant_ns); ("verify_ns", verify_ns) ];
        [ Printf.sprintf "public-key RSA-%d" bits;
          fmt_ns grant_ns;
          fmt_ns verify_ns;
          string_of_int bytes;
          "any (issued-for restricts)";
          "yes" ])
      [ 512; 768; 1024 ]
  in
  print_table "F6: one-restriction proxy, all three realizations"
    [ "realization"; "grant"; "verify CPU"; "presentation bytes"; "valid at";
      "third-party verifiable" ]
    (conv_row :: hybrid_row :: pk_rows);

  (* Private-key fast path: CRT + Montgomery signing vs the pre-optimization
     reference (plain d, division-per-step square-and-multiply). Signatures
     must be byte-identical — PKCS#1 v1.5 is deterministic and the CRT
     recombination computes the same value as c^d mod n. *)
  let sign_rows =
    List.map
      (fun bits ->
        let key = Crypto.Rsa.generate drbg ~bits in
        let msg = "fast-path trajectory" in
        let fast_sig = Crypto.Rsa.sign key msg in
        let ref_sig = Crypto.Rsa.sign_reference key msg in
        let identical = String.equal fast_sig ref_sig in
        let verifies = Crypto.Rsa.verify key.Crypto.Rsa.pub ~msg ~signature:fast_sig in
        let fast_ns = wall_ns ~iters:5 (fun () -> Crypto.Rsa.sign key msg) in
        let ref_ns = wall_ns ~iters:3 (fun () -> Crypto.Rsa.sign_reference key msg) in
        let speedup = ref_ns /. fast_ns in
        emit
          (Printf.sprintf "rsa-%d sign fast path" bits)
          [ ("bits", bits);
            ("byte_identical", if identical then 1 else 0);
            ("verifies", if verifies then 1 else 0) ]
          [ ("sign_ns", fast_ns); ("sign_reference_ns", ref_ns); ("speedup", speedup) ];
        [ Printf.sprintf "RSA-%d" bits;
          fmt_ns fast_ns;
          fmt_ns ref_ns;
          Printf.sprintf "%.1fx" speedup;
          (if identical then "yes" else "NO") ])
      [ 512; 1024 ]
  in
  print_table "F6b: RSA sign, CRT+Montgomery fast path vs pre-optimization reference"
    [ "modulus"; "sign (fast)"; "sign (reference)"; "speedup"; "byte-identical" ]
    sign_rows;
  Benchout.write ~id:"f6" ~title:"Fig 6: public-key vs conventional realization; sign fast path"
    (List.rev !json_rows)

(* ------------------------------------------------------------------ *)
(* C3: DSSA roles vs on-the-fly restricted proxies                    *)
(* ------------------------------------------------------------------ *)

let c3 () =
  section "C3 (Sec 5): delegation cost, restricted proxies vs DSSA roles";
  let w = World.create ~seed:"c3" () in
  let alice, _, alice_rsa = World.enrol_pk w "alice" in
  let bob = Principal.make ~realm:w.World.realm "bob" in
  let drbg = Sim.Net.drbg w.World.net in
  (* Restricted proxy: minted locally, no server contact, no server state. *)
  let proxy_grant () =
    Proxy.grant_pk ~drbg ~now:0 ~expires:max_int ~grantor:alice ~grantor_key:alice_rsa
      ~proxy_bits:512
      ~restrictions:
        [ R.Grantee ([ bob ], 1); R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] ]
      ()
  in
  let _, pdeltas, _ = metered w.World.net (fun () -> ignore (proxy_grant ())) in
  let proxy_ns = wall_ns ~iters:3 proxy_grant in

  let ca_p = Principal.make ~realm:"r" "dssa-ca" in
  let ca = Dssa.create w.World.net ~name:ca_p ~drbg ~bits:512 in
  Dssa.install ca;
  let dssa_delegate () =
    let cert, role_key =
      expect_ok
        (Dssa.create_role w.World.net ~ca:ca_p ~caller:"alice" ~owner:alice
           ~rights:[ "read:file1" ])
    in
    Dssa.delegate ~role_key ~to_:bob cert
  in
  let roles_before = Dssa.role_count ca in
  let _, ddeltas, _ = metered w.World.net (fun () -> ignore (dssa_delegate ())) in
  let roles_created = Dssa.role_count ca - roles_before in
  let dssa_ns = wall_ns ~iters:3 dssa_delegate in
  print_table "C3: one restricted delegation to bob"
    [ "scheme"; "CPU"; "messages"; "server state created" ]
    [ [ "restricted proxy (local grant)";
        fmt_ns proxy_ns;
        string_of_int (delta "net.messages" pdeltas);
        "none" ];
      [ "DSSA role creation + delegation";
        fmt_ns dssa_ns;
        string_of_int (delta "net.messages" ddeltas);
        Printf.sprintf "%d role registration at the CA (grows per delegation)" roles_created ] ];

  (* Narrowing an existing delegation: offline for proxies, another
     authority round-trip for ECMA PACs (Section 5). *)
  let base_proxy = proxy_grant () in
  let narrow_proxy () =
    expect_ok
      (Proxy.restrict_pk ~drbg ~now:0 ~expires:max_int ~proxy_bits:512
         ~restrictions:[ R.Quota ("pages", 1) ] base_proxy)
  in
  let _, ndeltas, _ = metered w.World.net (fun () -> ignore (narrow_proxy ())) in
  let narrow_ns = wall_ns ~iters:3 narrow_proxy in
  let pac_authority_p = Principal.make ~realm:"r" "pac-authority" in
  let pac_authority =
    Ecma_pac.create w.World.net ~name:pac_authority_p ~drbg ~bits:512
  in
  Ecma_pac.install pac_authority;
  Ecma_pac.entitle pac_authority alice "read:file1";
  let pac_narrow () =
    expect_ok
      (Ecma_pac.request w.World.net ~authority:pac_authority_p ~caller:alice
         ~privileges:[ "read:file1" ] ())
  in
  let _, pacdeltas, _ = metered w.World.net (fun () -> ignore (pac_narrow ())) in
  let pac_ns = wall_ns ~iters:3 pac_narrow in
  let session_key = Crypto.Drbg.generate drbg 32 in
  let conv_base =
    Proxy.grant_conventional ~drbg ~now:0 ~expires:max_int ~grantor:alice ~session_key
      ~base:"b" ~restrictions:[]
  in
  let conv_narrow () =
    expect_ok
      (Proxy.restrict_conventional ~drbg ~now:0 ~expires:max_int
         ~restrictions:[ R.Quota ("pages", 1) ] conv_base)
  in
  print_table "C3b: narrowing an existing delegation"
    [ "scheme"; "CPU"; "messages" ]
    [ [ "proxy cascade, conventional (offline)";
        fmt_ns (ns_per_op "conv-narrow" conv_narrow);
        "0" ];
      [ "proxy cascade, public-key (offline)";
        fmt_ns narrow_ns;
        string_of_int (delta "net.messages" ndeltas) ];
      [ "ECMA PAC re-issue (online)";
        fmt_ns pac_ns;
        string_of_int (delta "net.messages" pacdeltas) ] ]

(* ------------------------------------------------------------------ *)
(* A1: accept-once replay cache ablation                              *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1 (ablation): accept-once replay cache";
  let measured =
    List.map
      (fun size ->
        let cache = Replay_cache.create () in
        for i = 1 to size do
          ignore (Replay_cache.record cache ~now:0 ~expires:max_int (string_of_int i))
        done;
        let i = ref 0 in
        let probe_ns =
          ns_per_op (Printf.sprintf "replay-probe/%d" size) (fun () ->
              incr i;
              Replay_cache.seen cache ~now:0 (string_of_int (!i mod (2 * size))))
        in
        (* Every duplicate must be caught. *)
        let dupes_caught = ref 0 in
        for j = 1 to size do
          if Replay_cache.seen cache ~now:0 (string_of_int j) then incr dupes_caught
        done;
        (size, probe_ns, !dupes_caught))
      [ 100; 1_000; 10_000; 100_000 ]
  in
  print_table "A1: probe cost and replay detection vs cache population"
    [ "live identifiers"; "probe CPU"; "duplicates caught" ]
    (List.map
       (fun (size, probe_ns, caught) ->
         [ string_of_int size; fmt_ns probe_ns; Printf.sprintf "%d/%d" caught size ])
       measured);

  (* Capacity study: flood a small bounded cache with live (never-expiring)
     identifiers. Occupancy stays at the bound; every insertion past it
     evicts the soonest-expiring entry. *)
  let capacity = 1_000 and flood = 2_500 in
  let evictions = ref 0 in
  let bounded = Replay_cache.create ~capacity ~on_evict:(fun () -> incr evictions) () in
  for i = 1 to flood do
    ignore (Replay_cache.record bounded ~now:0 ~expires:(max_int - i) (string_of_int i))
  done;
  print_table "A1b: bounded replay cache under flood"
    [ "capacity"; "inserted"; "evictions"; "final size" ]
    [ [ string_of_int capacity;
        string_of_int flood;
        string_of_int !evictions;
        string_of_int (Replay_cache.size bounded) ] ];

  Benchout.write ~id:"a1" ~title:"ablation: accept-once replay cache"
    (List.map
       (fun (size, probe_ns, caught) ->
         {
           Benchout.label = Printf.sprintf "population=%d" size;
           ints = [ ("population", size); ("duplicates_caught", caught) ];
           floats = [ ("probe_ns", probe_ns) ];
         })
       measured
    @ [ {
          Benchout.label = Printf.sprintf "flood capacity=%d inserted=%d" capacity flood;
          ints =
            [ ("capacity", capacity);
              ("inserted", flood);
              ("evictions", !evictions);
              ("final_size", Replay_cache.size bounded) ];
          floats = [];
        } ])

(* ------------------------------------------------------------------ *)
(* A3: TGS proxies (Sec 6.3) vs per-server capabilities               *)
(* ------------------------------------------------------------------ *)

let a3 () =
  section "A3 (Sec 6.3): equipping a grantee for k end-servers";
  let rows =
    List.map
      (fun k ->
        (* Scheme 1: the grantor mints one capability per end-server. *)
        let w = World.create ~seed:(Printf.sprintf "a3cap%d" k) () in
        let alice, _ = World.enrol w "alice" in
        let servers = List.init k (fun i -> fst (World.enrol w (Printf.sprintf "srv%d" i))) in
        let tgt = World.login w alice in
        let _, cap_deltas, _ =
          metered w.World.net (fun () ->
              List.iter
                (fun s ->
                  ignore
                    (expect_ok
                       (Capability.mint_via_kdc w.World.net ~kdc:w.World.kdc_name ~tgt
                          ~end_server:s ~target:"obj" ~ops:[ "read" ] ())))
                servers)
        in
        (* Scheme 2: one TGS proxy; the grantee derives per server. *)
        let w = World.create ~seed:(Printf.sprintf "a3tgs%d" k) () in
        let alice, _ = World.enrol w "alice" in
        let servers = List.init k (fun i -> fst (World.enrol w (Printf.sprintf "srv%d" i))) in
        let tgt = World.login w alice in
        let _, grant_deltas, _ =
          metered w.World.net (fun () ->
              expect_ok
                (Tgs_proxy.grant w.World.net ~kdc:w.World.kdc_name ~tgt
                   ~restrictions:[ R.Authorized [ { R.target = "obj"; ops = [ "read" ] } ] ]
                   ()))
        in
        let proxy_tgt =
          expect_ok
            (Tgs_proxy.grant w.World.net ~kdc:w.World.kdc_name ~tgt
               ~restrictions:[ R.Authorized [ { R.target = "obj"; ops = [ "read" ] } ] ]
               ())
        in
        let _, use_deltas, _ =
          metered w.World.net (fun () ->
              List.iter
                (fun s ->
                  ignore
                    (expect_ok
                       (Tgs_proxy.use w.World.net ~kdc:w.World.kdc_name ~proxy_tgt ~service:s)))
                servers)
        in
        [ string_of_int k;
          string_of_int (delta "net.messages" cap_deltas);
          string_of_int (delta "net.messages" grant_deltas);
          string_of_int (delta "net.messages" use_deltas) ])
      [ 1; 2; 4; 8; 16 ]
  in
  print_table "A3: messages to delegate access to k end-servers"
    [ "end-servers k"; "k capabilities (grantor msgs)"; "TGS proxy (grantor msgs)";
      "TGS proxy (grantee msgs)" ]
    rows

(* ------------------------------------------------------------------ *)
(* A2: restriction-propagation ablation (Sec 7.9)                     *)
(* ------------------------------------------------------------------ *)

let a2 () =
  section "A2 (ablation): limit-restriction elision in propagation";
  let server_a = Principal.make ~realm:"r" "server-a" in
  let server_b = Principal.make ~realm:"r" "server-b" in
  let rows =
    List.map
      (fun limited ->
        (* Half of the limited restrictions apply to server-a (reachable),
           half to server-b (unreachable by the derived proxy). *)
        let base = [ R.Quota ("usd", 10); R.Accept_once "x" ] in
        let limits =
          List.init limited (fun i ->
              let target = if i mod 2 = 0 then server_a else server_b in
              R.Limit_restriction ([ target ], [ R.Quota (Printf.sprintf "c%d" i, i) ]))
        in
        let rs = base @ limits in
        let propagated = R.propagate ~issued_for:[ server_a ] rs in
        let naive = R.Issued_for [ server_a ] :: rs in
        let bytes l = String.length (Wire.encode (R.list_to_wire l)) in
        [ string_of_int limited;
          string_of_int (List.length naive);
          string_of_int (bytes naive);
          string_of_int (List.length propagated);
          string_of_int (bytes propagated) ])
      [ 0; 2; 4; 8; 16 ]
  in
  print_table "A2: derived-proxy restriction list, naive copy vs Sec-7.9 elision"
    [ "limit-restrictions"; "naive count"; "naive bytes"; "elided count"; "elided bytes" ]
    rows

(* ------------------------------------------------------------------ *)
(* C4: resilience under chaos (drop rate vs goodput/latency/retries)  *)
(* ------------------------------------------------------------------ *)

let c4 () =
  section "C4: accounting workload under fault injection";
  Printf.printf
    "Two-bank marketplace workload (%d ops) under a seeded fault plan; each row\n\
     is one chaos run. Goodput = operations whose caller saw success; latency is\n\
     virtual per-logical-call time including timeouts, backoff, and retries.\n"
    Chaos.default.Chaos.ops;
  let row drop =
    let cfg =
      { Chaos.default with seed = Printf.sprintf "c4-%.2f" drop; drop; crash_drawee = false }
    in
    let o = Chaos.run cfg in
    let lat_mean, lat_max =
      match o.Chaos.latency with
      | None -> ("n/a", "n/a")
      | Some d ->
          ( Printf.sprintf "%.0f us" (Sim.Metrics.mean d),
            Printf.sprintf "%d us" d.Sim.Metrics.max )
    in
    [ Printf.sprintf "%.0f%%" (drop *. 100.);
      Printf.sprintf "%d/%d" o.Chaos.succeeded o.Chaos.attempted;
      string_of_int o.Chaos.retries_used;
      string_of_int o.Chaos.gave_up;
      string_of_int o.Chaos.dedups;
      lat_mean;
      lat_max;
      (match o.Chaos.conserved with Ok () -> "yes" | Error _ -> "NO");
      string_of_int o.Chaos.double_redemptions ]
  in
  let rows = List.map row [ 0.0; 0.05; 0.15; 0.25; 0.35 ] in
  print_table "C4: goodput/latency/retries vs per-message drop rate"
    [ "drop"; "goodput"; "retries"; "gave up"; "dedup"; "mean latency"; "max latency";
      "conserved"; "double-redeem" ]
    rows

(* ------------------------------------------------------------------ *)
(* S1: sharded accounting cluster with replica failover               *)
(* ------------------------------------------------------------------ *)

(* Virtual-time simulation: every integer below (messages, failovers,
   percentiles) is deterministic and identical in fast and full mode, so
   the whole row set is gateable against a committed baseline. *)
let s1 () =
  section "S1: sharded accounting cluster under replica failover";
  Printf.printf
    "Buyers pay a shop by check across consistently-hashed bank shards, each a\n\
     primary/standby pair with replay-log replication; a seeded fault plan drops\n\
     and duplicates messages and permanently crashes the shop shard's primary\n\
     mid-run. Goodput = operations whose caller saw success; latency percentiles\n\
     are per-operation virtual time including timeouts and failover.\n";
  let row shards =
    let cfg =
      { Cluster.Scenario.default with seed = Printf.sprintf "s1-%d" shards; shards }
    in
    (shards, Cluster.Scenario.run cfg)
  in
  let measured = List.map row [ 1; 2; 4; 8 ] in
  (* The domains axis: the same seeded lane workload (4 shards, one fully
     isolated world per shard, cross-shard checks cleared at epoch
     barriers) scheduled over 1, 2, and 4 OCaml domains. Every count and
     the merged metrics/trace/span output must be byte-identical to the
     domains=1 schedule — those are the gated integers; wall-clock and the
     derived speedup are machine-dependent floats and never gated. *)
  let lane_cfg domains =
    { Cluster.Lanes.default with Cluster.Lanes.seed = "s1-lanes"; shards = 4; domains }
  in
  let lane_base = Cluster.Lanes.run (lane_cfg 1) in
  let lane_rows =
    List.map
      (fun domains ->
        let o = if domains = 1 then lane_base else Cluster.Lanes.run (lane_cfg domains) in
        let same =
          o.Cluster.Lanes.metrics = lane_base.Cluster.Lanes.metrics
          && o.Cluster.Lanes.trace = lane_base.Cluster.Lanes.trace
          && o.Cluster.Lanes.span_jsonl = lane_base.Cluster.Lanes.span_jsonl
          && o.Cluster.Lanes.epochs_run = lane_base.Cluster.Lanes.epochs_run
          && o.Cluster.Lanes.delivered = lane_base.Cluster.Lanes.delivered
          && o.Cluster.Lanes.succeeded = lane_base.Cluster.Lanes.succeeded
        in
        (domains, o, same))
      [ 1; 2; 4 ]
  in
  print_table "S1: goodput/latency/messages vs shard count (primary crashed mid-run)"
    [ "shards"; "goodput"; "failovers"; "promoted"; "repl ships"; "messages"; "p50";
      "p99"; "conserved"; "double-redeem" ]
    (List.map
       (fun (shards, o) ->
         [ string_of_int shards;
           Printf.sprintf "%d/%d" o.Cluster.Scenario.succeeded o.Cluster.Scenario.attempted;
           string_of_int o.Cluster.Scenario.failovers;
           string_of_int o.Cluster.Scenario.promotions;
           string_of_int o.Cluster.Scenario.repl_shipped;
           string_of_int o.Cluster.Scenario.messages;
           Printf.sprintf "%d us" o.Cluster.Scenario.p50_us;
           Printf.sprintf "%d us" o.Cluster.Scenario.p99_us;
           (match o.Cluster.Scenario.conserved with Ok () -> "yes" | Error _ -> "NO");
           string_of_int o.Cluster.Scenario.double_redemptions ])
       measured);
  print_table "S1: lane-parallel schedule vs OCaml domains (4 shards, same seed)"
    [ "domains"; "goodput"; "cleared"; "delivered"; "conserved"; "identical";
      "wall"; "speedup" ]
    (List.map
       (fun (domains, o, same) ->
         [ string_of_int domains;
           Printf.sprintf "%d/%d" o.Cluster.Lanes.succeeded o.Cluster.Lanes.attempted;
           Printf.sprintf "%d/%d" o.Cluster.Lanes.remote_cleared o.Cluster.Lanes.remote_sent;
           string_of_int o.Cluster.Lanes.delivered;
           (match o.Cluster.Lanes.conserved with Ok () -> "yes" | Error _ -> "NO");
           (if same then "yes" else "NO");
           Printf.sprintf "%.3f s" o.Cluster.Lanes.wall_s;
           Printf.sprintf "%.2fx" (lane_base.Cluster.Lanes.wall_s /. o.Cluster.Lanes.wall_s) ])
       lane_rows);
  Benchout.write ~id:"s1"
    ~title:"cluster: sharded accounting, replica failover, conservation"
    (List.map
       (fun (shards, o) ->
         {
           Benchout.label = Printf.sprintf "shards=%d" shards;
           ints =
             [ ("shards", shards);
               ("succeeded", o.Cluster.Scenario.succeeded);
               ("messages", o.Cluster.Scenario.messages);
               ("failovers", o.Cluster.Scenario.failovers);
               ("promotions", o.Cluster.Scenario.promotions);
               ("repl_shipped", o.Cluster.Scenario.repl_shipped);
               ("repl_failures", o.Cluster.Scenario.repl_failures);
               ("conservation_ok",
                if Result.is_ok o.Cluster.Scenario.conserved then 1 else 0);
               ("double_redemptions", o.Cluster.Scenario.double_redemptions);
               ("p50_us", o.Cluster.Scenario.p50_us);
               ("p99_us", o.Cluster.Scenario.p99_us) ];
           floats = [];
         })
       measured
    @ List.map
        (fun (domains, o, same) ->
          {
            Benchout.label = Printf.sprintf "domains=%d" domains;
            ints =
              [ ("domains", domains);
                ("succeeded", o.Cluster.Lanes.succeeded);
                ("remote_cleared", o.Cluster.Lanes.remote_cleared);
                ("delivered", o.Cluster.Lanes.delivered);
                ("bulletins_applied", o.Cluster.Lanes.bulletins_applied);
                ("conservation_ok", if Result.is_ok o.Cluster.Lanes.conserved then 1 else 0);
                ("double_redemptions", o.Cluster.Lanes.double_redemptions);
                ("identical_to_1domain", if same then 1 else 0) ];
            floats =
              [ ("wall_s", o.Cluster.Lanes.wall_s);
                ("speedup_vs_1domain",
                 lane_base.Cluster.Lanes.wall_s /. o.Cluster.Lanes.wall_s) ];
          })
        lane_rows)

(* ------------------------------------------------------------------ *)
(* R1: revocation rate vs verify throughput                           *)
(* ------------------------------------------------------------------ *)

(* A warm verify cache serves a fixed population of public-key chains
   while signed bulletins land at increasing rates. Cache keys are one-way
   hashes, so a bulletin that adds coverage retires the whole generation
   (the invalidation storm); the verify path then pays fresh RSA for every
   live chain until the cache re-warms. Logical counters (verifies, hits,
   invalidations, denials) are deterministic and CI-gated; CPU time is
   informative only. *)

let r1 () =
  section "R1: revocation rate vs verify throughput";
  let chains = 32 and verifies = 2_000 in
  let drbg = Crypto.Drbg.create ~seed:"r1" in
  let realm = "r" in
  let authority = Principal.make ~realm "bulletin-board" in
  let grantor = Principal.make ~realm "grantor" in
  let ra_kp = Crypto.Rsa.generate drbg ~bits:512 in
  let g_kp = Crypto.Rsa.generate drbg ~bits:512 in
  let lookup q = if Principal.equal q grantor then Some g_kp.Crypto.Rsa.pub else None in
  let population =
    Array.init chains (fun i ->
        let proxy =
          Proxy.grant_pk ~drbg ~now:0 ~expires:1_000_000_000 ~grantor ~grantor_key:g_kp
            ~proxy_bits:512
            ~restrictions:
              [ R.Authorized [ { R.target = Printf.sprintf "obj-%d" i; ops = [ "read" ] } ] ]
            ()
        in
        match proxy.Proxy.flavor with
        | Proxy.Public_key certs -> certs
        | _ -> assert false)
  in
  let serial_of certs = (List.hd certs).Proxy_cert.pk_body.Proxy_cert.serial in
  (* revocations per 1000 verifications *)
  let rates = [ 0; 1; 4; 16; 64 ] in
  let measured =
    List.map
      (fun rate ->
        let sub = Revocation.create ~authority ~authority_pub:ra_kp.Crypto.Rsa.pub ~now:0 () in
        let cache = Verify_cache.create () in
        let epoch = ref 1 in
        let entries = ref [] in
        let revoked = ref 0 in
        let bumps = ref 0 in
        let denials = ref 0 in
        let interval = if rate = 0 then 0 else 1_000 / rate in
        (* One pass only (~iters:1): the logical counters below must not
           depend on how often the wall clock sampled the loop. *)
        let ns =
          wall_ns ~iters:1 (fun () ->
              for i = 1 to verifies do
                if interval > 0 && i mod interval = 0 && !revoked < chains - 1 then begin
                  entries :=
                    Revocation.By_serial (serial_of population.(!revoked)) :: !entries;
                  incr revoked;
                  incr epoch;
                  let b =
                    Revocation.sign ~key:ra_kp ~authority ~epoch:!epoch ~issued_at:0 !entries
                  in
                  match Revocation.apply sub b with
                  | Ok (Revocation.Applied { fresh; _ }) when fresh > 0 ->
                      ignore (Verify_cache.bump_generation cache);
                      incr bumps
                  | _ -> ()
                end;
                match
                  Verifier.verify_pk ~lookup ~cache ~revocation:sub ~now:1
                    population.(i mod chains)
                with
                | Ok _ -> ()
                | Error _ -> incr denials
              done)
        in
        let s = Verify_cache.stats cache in
        (rate, !revoked, !bumps, !denials, s, ns))
      rates
  in
  print_table "R1: bulletin-driven invalidation vs verify throughput"
    [ "revocations/1k verifies"; "revoked"; "generation bumps"; "cache hits"; "misses";
      "invalidated"; "denials"; "per-verify CPU" ]
    (List.map
       (fun (rate, revoked, bumps, denials, s, ns) ->
         [ string_of_int rate;
           string_of_int revoked;
           string_of_int bumps;
           string_of_int s.Verify_cache.hits;
           string_of_int s.Verify_cache.misses;
           string_of_int s.Verify_cache.invalidations;
           string_of_int denials;
           fmt_ns (ns /. float_of_int verifies) ])
       measured);
  Benchout.write ~id:"r1" ~title:"revocation: bulletin rate vs verify throughput"
    (List.map
       (fun (rate, revoked, bumps, denials, s, ns) ->
         {
           Benchout.label = Printf.sprintf "rate=%d/1k" rate;
           ints =
             [ ("verifies", verifies);
               ("revocations", revoked);
               ("generation_bumps", bumps);
               ("cache_hits", s.Verify_cache.hits);
               ("cache_misses", s.Verify_cache.misses);
               ("invalidations", s.Verify_cache.invalidations);
               ("denials", denials) ];
           floats =
             [ ("verify_ns", ns /. float_of_int verifies);
               ("throughput_per_s", float_of_int verifies *. 1e9 /. ns) ];
         })
       measured)

(* ------------------------------------------------------------------ *)
(* L1: open-loop load harness + batched hot path                       *)
(* ------------------------------------------------------------------ *)

(* Two halves. The cascade study isolates the link cache's O(k+M) claim:
   M holders sharing one depth-k prefix, verified under four strategies,
   with exact deterministic RSA totals. The load runs drive the full
   stack (KDC, guarded file server, sharded cluster) open-loop from a
   100k-principal lazy Zipf population, once with the batched hot path
   (link cache + RPC pipelining) and once without. All integer metrics
   are CI-gated; wall-clock goes in floats. *)

let l1 () =
  section "L1: open-loop load harness + batched hot path";
  Printf.printf
    "Cascade study: %d holders share one depth-%d chain prefix. The link cache\n\
     verifies k+M signatures (the floor); whole-presentation memoization pays\n\
     (k+1)*M because no holder's chain matches another's as a unit.\n"
    16 8;
  let c = Load.Driver.cascade_study ~seed:"l1-cascade" () in
  print_table "L1a: RSA verifies, depth-8 prefix x 16 holders x 3 repeats"
    [ "strategy"; "rsa verifies"; "cache hits"; "misses" ]
    [ [ "uncached"; string_of_int c.Load.Driver.c_rsa_uncached; "-"; "-" ];
      [ "whole-presentation memo"; string_of_int c.Load.Driver.c_rsa_whole_chain; "-"; "-" ];
      [ "per-signature cache"; string_of_int c.Load.Driver.c_rsa_per_signature;
        string_of_int c.Load.Driver.c_sig_hits; string_of_int c.Load.Driver.c_sig_misses ];
      [ "link (chain-prefix) cache"; string_of_int c.Load.Driver.c_rsa_link;
        string_of_int c.Load.Driver.c_link_hits; string_of_int c.Load.Driver.c_link_misses ] ];
  Printf.printf
    "Open-loop load: steady/burst/steady arrival profile against the full stack;\n\
     lateness under the burst lands in p99, not in a throttled offered load.\n";
  let base = { Load.Driver.default with Load.Driver.seed = "l1" } in
  let timed label cfg =
    let t0 = Unix.gettimeofday () in
    let o = Load.Driver.run cfg in
    (label, o, Unix.gettimeofday () -. t0)
  in
  let runs =
    [ timed "batched" base;
      timed "unbatched"
        { base with Load.Driver.link_cache = false; Load.Driver.pipeline = false } ]
  in
  let met o k = Option.value (List.assoc_opt k o.Load.Driver.metrics) ~default:0 in
  print_table "L1b: open-loop goodput/latency, batched hot path on vs off"
    [ "config"; "goodput"; "touched"; "keygens"; "reused"; "rsa vfy"; "link hits";
      "batch items"; "repl ships"; "read skips"; "p50"; "p99" ]
    (List.map
       (fun (label, o, _) ->
         [ label;
           Printf.sprintf "%d/%d" o.Load.Driver.succeeded o.Load.Driver.arrivals;
           string_of_int o.Load.Driver.touched;
           string_of_int o.Load.Driver.keys_generated;
           string_of_int o.Load.Driver.keys_reused;
           string_of_int (met o "crypto.rsa_verify");
           string_of_int (met o "link_cache.hits");
           string_of_int (met o "rpc.batch.items");
           string_of_int (met o "cluster.repl_shipped");
           string_of_int (met o "cluster.repl_read_skips");
           Printf.sprintf "%d us" o.Load.Driver.p50_us;
           Printf.sprintf "%d us" o.Load.Driver.p99_us ])
       runs);
  Benchout.write ~id:"l1" ~title:"load: open-loop harness + batched hot path"
    ({
       Benchout.label = "cascade depth=8 holders=16";
       ints =
         [ ("depth", c.Load.Driver.c_depth);
           ("holders", c.Load.Driver.c_holders);
           ("repeats", c.Load.Driver.c_repeats);
           ("rsa_uncached", c.Load.Driver.c_rsa_uncached);
           ("rsa_whole_chain", c.Load.Driver.c_rsa_whole_chain);
           ("rsa_per_signature", c.Load.Driver.c_rsa_per_signature);
           ("rsa_link", c.Load.Driver.c_rsa_link);
           ("link_hits", c.Load.Driver.c_link_hits);
           ("link_misses", c.Load.Driver.c_link_misses);
           ("sig_hits", c.Load.Driver.c_sig_hits);
           ("sig_misses", c.Load.Driver.c_sig_misses);
           ("link_cheaper_than_whole_chain",
            if c.Load.Driver.c_rsa_link < c.Load.Driver.c_rsa_whole_chain then 1 else 0) ];
       floats = [];
     }
    :: List.map
         (fun (label, o, secs) ->
           {
             Benchout.label = "load " ^ label;
             ints =
               [ ("population", base.Load.Driver.population);
                 ("arrivals", o.Load.Driver.arrivals);
                 ("succeeded", o.Load.Driver.succeeded);
                 ("touched", o.Load.Driver.touched);
                 ("materializations", o.Load.Driver.materializations);
                 ("keys_generated", o.Load.Driver.keys_generated);
                 ("keys_reused", o.Load.Driver.keys_reused);
                 ("retired", o.Load.Driver.retired);
                 ("grants", o.Load.Driver.grants);
                 ("presents", o.Load.Driver.presents);
                 ("debits", o.Load.Driver.debits);
                 ("clears", o.Load.Driver.clears);
                 ("sweeps", o.Load.Driver.sweeps);
                 ("span_count", o.Load.Driver.span_count);
                 ("rsa_verify", met o "crypto.rsa_verify");
                 ("link_hits", met o "link_cache.hits");
                 ("link_misses", met o "link_cache.misses");
                 ("batch_calls", met o "rpc.batch.calls");
                 ("batch_coalesced", met o "rpc.batch.coalesced");
                 ("batch_items", met o "rpc.batch.items");
                 ("repl_shipped", met o "cluster.repl_shipped");
                 ("repl_read_skips", met o "cluster.repl_read_skips");
                 ("repl_replies_shipped", met o "cluster.repl_replies_shipped");
                 ("messages", met o "net.messages");
                 ("p50_us", o.Load.Driver.p50_us);
                 ("p99_us", o.Load.Driver.p99_us) ];
             floats = [ ("wall_s", secs) ];
           })
         runs)

(* ------------------------------------------------------------------ *)
(* X1: federation — intra- vs cross-realm cost; membership replica    *)
(* ------------------------------------------------------------------ *)

(* Two federated realms on one seeded network. The first half prices the
   ticket walk and the presentation: an intra-realm grant is one TGS
   exchange, a cold cross-realm grant pays the extra hop through the peer
   KDC (cross-realm TGT + remote TGS), a warm one is free (credential
   cache), and a second target in the same foreign realm pays only the
   remote half (the cross-realm TGT is cached per realm). The second half
   prices the Grapevine-style membership replica: asserts served from the
   local snapshot vs the snapshot pulls themselves. All integer metric
   deltas are deterministic and CI-gated; CPU time is informative only. *)

let x1 () =
  section "X1: federation — intra- vs cross-realm cost; membership replica";
  let wa = World.create ~seed:"x1" ~realm:"realm-a" () in
  let net = wa.World.net in
  let wb = World.create_in net ~realm:"realm-b" () in
  Kdc.federate wa.World.kdc wb.World.kdc;
  let user, user_key = World.enrol wa "user" in
  let fileserver w name =
    let p, key = World.enrol w name in
    let acl = Acl.create () in
    Acl.add acl ~target:"*"
      { Acl.subject = Acl.Principal_is user; rights = [ "read" ]; restrictions = [] };
    let fs = File_server.create net ~me:p ~my_key:key ~acl () in
    File_server.install fs;
    File_server.put_direct fs ~path:"doc" "x1";
    p
  in
  let fs_a = fileserver wa "fs-a" in
  let fs_b = fileserver wb "fs-b" in
  let fs_b2 = fileserver wb "fs-b2" in
  let g =
    match Granter.create net ~me:user ~my_key:user_key ~kdc:wa.World.kdc_name with
    | Ok g -> g
    | Error e -> failwith ("x1: " ^ e)
  in
  let m = Sim.Net.metrics net in
  let gauges =
    [ ("messages", "net.messages"); ("seal", "crypto.seal"); ("open", "crypto.open");
      ("tgs_req", "kdc.tgs_req"); ("tgs_cross", "kdc.tgs_cross") ]
  in
  let probe label f =
    let before = List.map (fun (_, k) -> Sim.Metrics.get m k) gauges in
    let ns = wall_ns ~iters:1 f in
    let ints =
      List.map2 (fun (name, k) b -> (name, Sim.Metrics.get m k - b)) gauges before
    in
    (label, ints, ns)
  in
  let creds_for target = ignore (Result.get_ok (Granter.credentials_for g target)) in
  let read target =
    let creds = Result.get_ok (Granter.credentials_for g target) in
    match File_server.read net ~creds ~path:"doc" () with
    | Ok _ -> ()
    | Error e -> failwith ("x1 read: " ^ e)
  in
  (* Explicitly sequenced: each probe must see the cache state the previous
     one left behind. *)
  let g1 = probe "grant intra cold" (fun () -> creds_for fs_a) in
  let g2 = probe "grant intra warm" (fun () -> creds_for fs_a) in
  let g3 = probe "grant cross cold" (fun () -> creds_for fs_b) in
  let g4 = probe "grant cross warm" (fun () -> creds_for fs_b) in
  let g5 = probe "grant cross 2nd target" (fun () -> creds_for fs_b2) in
  let g6 = probe "present intra" (fun () -> read fs_a) in
  let g7 = probe "present cross" (fun () -> read fs_b) in
  let grant_rows = [ g1; g2; g3; g4; g5; g6; g7 ] in
  print_table "X1a: ticket walks and presentations (metric deltas)"
    ("phase" :: List.map fst gauges @ [ "CPU" ])
    (List.map
       (fun (label, ints, ns) ->
         label :: List.map (fun (_, v) -> string_of_int v) ints @ [ fmt_ns ns ])
       grant_rows);
  (* --- membership replica: serve locally, pull rarely --- *)
  let members = 8 in
  let gs_p, gs_key, gs_rsa = World.enrol_pk wa "groups" in
  let gs =
    match
      Group_server.create net ~me:gs_p ~my_key:gs_key ~kdc:wa.World.kdc_name
        ~signing_key:gs_rsa ()
    with
    | Ok gs -> gs
    | Error e -> failwith ("x1 groups: " ^ e)
  in
  Group_server.install gs;
  let crowd =
    Array.init members (fun i -> World.enrol wa (Printf.sprintf "member-%d" i))
  in
  Array.iter (fun (p, _) -> Group_server.add_member gs ~group:"eng" p) crowd;
  let rep_p, rep_key = World.enrol wb "groups-replica" in
  let bound = 600_000_000 in
  let replica =
    match
      Group_replica.create net ~me:rep_p ~my_key:rep_key ~kdc:wb.World.kdc_name ~origin:gs_p
        ~origin_pub:gs_rsa.Crypto.Rsa.pub ~staleness_bound_us:bound ()
    with
    | Ok r -> r
    | Error e -> failwith ("x1 replica: " ^ e)
  in
  Group_replica.install replica;
  let pull label =
    probe label (fun () ->
        match Group_replica.refresh replica with
        | Ok _ -> ()
        | Error e -> failwith ("x1 refresh: " ^ e))
  in
  let pull1 = pull "snapshot pull cold" in
  let creds_of (p, key) =
    let tgt =
      Result.get_ok
        (Kdc.Client.authenticate net ~kdc:wa.World.kdc_name ~client:p ~client_key:key
           ~service:wa.World.kdc_name ())
    in
    let cross =
      Result.get_ok
        (Kdc.Client.derive net ~kdc:wa.World.kdc_name ~tgt ~target:wb.World.kdc_name ())
    in
    Result.get_ok (Kdc.Client.derive net ~kdc:wb.World.kdc_name ~tgt:cross ~target:rep_p ())
  in
  let crowd_creds = Array.map creds_of crowd in
  let assert_all label =
    probe label (fun () ->
        Array.iter
          (fun creds ->
            match
              Group_server.request_membership_proxy net ~creds ~group:"eng" ~end_server:fs_b ()
            with
            | Ok _ -> ()
            | Error e -> failwith ("x1 assert: " ^ e))
          crowd_creds)
  in
  let served1 = assert_all "asserts from replica" in
  (* Push the replica past its bound: asserts fail closed locally, no
     origin traffic; a pull restores service. *)
  Sim.Clock.advance (Sim.Net.clock net) (bound + 1);
  let stale =
    probe "asserts while stale" (fun () ->
        Array.iter
          (fun creds ->
            match
              Group_server.request_membership_proxy net ~creds ~group:"eng" ~end_server:fs_b ()
            with
            | Ok _ -> failwith "x1: stale replica served"
            | Error _ -> ())
          crowd_creds)
  in
  let pull2 = pull "snapshot pull after stale" in
  let served2 = assert_all "asserts after refresh" in
  let membership_rows = [ pull1; served1; stale; pull2; served2 ] in
  print_table "X1b: membership replica (metric deltas)"
    ("phase" :: List.map fst gauges @ [ "CPU" ])
    (List.map
       (fun (label, ints, ns) ->
         label :: List.map (fun (_, v) -> string_of_int v) ints @ [ fmt_ns ns ])
       membership_rows);
  let hits = Sim.Metrics.get m "membership.replica_hits" in
  let stale_denials = Sim.Metrics.get m "membership.replica_stale_denials" in
  let pulls = Sim.Metrics.get m "membership.snapshots_applied" in
  Printf.printf
    "\nReplica served %d assert(s) from %d snapshot pull(s) (%d stale denial(s) while past\n\
     the bound): the origin realm sees one cross-realm walk per publication interval, not\n\
     one per membership decision.\n"
    hits pulls stale_denials;
  Benchout.write ~id:"x1" ~title:"federation: intra- vs cross-realm cost; membership replica"
    (List.map
       (fun (label, ints, ns) -> { Benchout.label; ints; floats = [ ("cpu_ns", ns) ] })
       (grant_rows @ membership_rows)
    @ [ {
          Benchout.label = "replica counters";
          ints =
            [ ("members", members); ("replica_hits", hits);
              ("stale_denials", stale_denials); ("snapshots_applied", pulls) ];
          floats = [];
        } ])

(* The experiment registry: ids as used in DESIGN.md / EXPERIMENTS.md. *)
let all =
  [ ("f1", "Fig 1: proxy grant/verify vs restriction count", fig1);
    ("f2", "Fig 2: per-request cost as services stack", fig2);
    ("f3", "Fig 3: authorization protocol vs online queries", fig3);
    ("f4", "Fig 4: cascade depth vs Sollins", fig4);
    ("f5", "Fig 5: check clearing vs intermediaries; Amoeba", fig5);
    ("f6", "Fig 6: conventional vs hybrid vs public-key", fig6);
    ("c3", "Sec 5: delegation and narrowing vs DSSA/ECMA", c3);
    ("c4", "chaos: goodput/latency/retries vs drop rate", c4);
    ("a1", "ablation: accept-once replay cache", a1);
    ("a2", "ablation: limit-restriction elision", a2);
    ("a3", "Sec 6.3: TGS proxies vs per-server capabilities", a3);
    ("s1", "cluster: sharded accounting, replica failover", s1);
    ("r1", "revocation: bulletin rate vs verify throughput", r1);
    ("l1", "load: open-loop harness + batched hot path", l1);
    ("x1", "federation: intra- vs cross-realm cost; membership replica", x1) ]

let run ids =
  let t0 = Unix.gettimeofday () in
  print_endline "proxykit benchmark harness -- regenerating the paper's figures";
  print_endline "(quantities: simulated-network messages/bytes/latency, crypto ops, CPU time)";
  let selected =
    match ids with
    | [] -> all
    | ids -> List.filter (fun (id, _, _) -> List.mem id ids) all
  in
  if selected = [] then
    Printf.printf "no such experiment; known ids: %s\n"
      (String.concat ", " (List.map (fun (id, _, _) -> id) all))
  else begin
    List.iter (fun (_, _, f) -> f ()) selected;
    Printf.printf "\n%d experiment(s) completed in %.1f s\n" (List.length selected)
      (Unix.gettimeofday () -. t0)
  end
