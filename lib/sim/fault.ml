type dir = [ `Request | `Response | `Both ]

type directive =
  | Drop of { src : string option; dst : string option; dir : dir; p : float }
  | Duplicate of { src : string option; dst : string option; dir : dir; p : float }
  | Jitter of { src : string option; dst : string option; dir : dir; max_us : int }
  | Crash of { node : string; at : int; until : int option }
  | Partition of { a : string list; b : string list; at : int; until : int option }

type plan = { p_seed : string; p_directives : directive list }

let check_p p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Fault: probability must be in [0,1]"

let check_directive = function
  | Drop { p; _ } | Duplicate { p; _ } -> check_p p
  | Jitter { max_us; _ } -> if max_us < 0 then invalid_arg "Fault.jitter: negative"
  | Crash { at; until; _ } -> (
      match until with
      | Some u when u < at -> invalid_arg "Fault.crash: until before at"
      | _ -> ())
  | Partition { at; until; _ } -> (
      match until with
      | Some u when u < at -> invalid_arg "Fault.partition: until before at"
      | _ -> ())

let plan ~seed directives =
  List.iter check_directive directives;
  { p_seed = seed; p_directives = directives }

let directives p = p.p_directives
let seed p = p.p_seed

let extend p extra =
  List.iter check_directive extra;
  { p with p_directives = p.p_directives @ extra }

let drop ?src ?dst ?(dir = `Both) p = Drop { src; dst; dir; p }
let duplicate ?src ?dst ?(dir = `Both) p = Duplicate { src; dst; dir; p }
let jitter ?src ?dst ?(dir = `Both) max_us = Jitter { src; dst; dir; max_us }
let crash node ~at ?until () = Crash { node; at; until }
let partition ~a ~b ~at ?until () = Partition { a; b; at; until }

type runtime = { rt_plan : plan; rt_drbg : Crypto.Drbg.t }

let runtime p = { rt_plan = p; rt_drbg = Crypto.Drbg.create ~seed:("fault:" ^ p.p_seed) }

let in_window ~now ~at ~until =
  now >= at && (match until with None -> true | Some u -> now < u)

let node_down rt ~now name =
  List.exists
    (function
      | Crash { node; at; until } -> node = name && in_window ~now ~at ~until
      | _ -> false)
    rt.rt_plan.p_directives

let partitioned rt ~now ~src ~dst =
  let across a b =
    (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a)
  in
  List.exists
    (function
      | Partition { a; b; at; until } -> in_window ~now ~at ~until && across a b
      | _ -> false)
    rt.rt_plan.p_directives

let matches ~rule_src ~rule_dst ~rule_dir ~dir ~src ~dst =
  (match rule_src with None -> true | Some s -> s = src)
  && (match rule_dst with None -> true | Some d -> d = dst)
  && (match rule_dir with `Both -> true | (`Request | `Response) as d -> d = dir)

(* One coin flip with probability [p], quantized to a millionth. Drawing
   through [uniform_int] keeps the DRBG byte stream identical across runs
   with the same plan and workload. *)
let flip rt p =
  p > 0. && Crypto.Drbg.uniform_int rt.rt_drbg 1_000_000 < int_of_float (p *. 1e6)

type outcome = { o_drop : bool; o_duplicate : bool; o_jitter_us : int }

let transit rt ~dir ~src ~dst =
  List.fold_left
    (fun acc d ->
      match d with
      | Drop { src = rs; dst = rd; dir = rdir; p }
        when matches ~rule_src:rs ~rule_dst:rd ~rule_dir:rdir ~dir ~src ~dst ->
          let hit = flip rt p in
          { acc with o_drop = acc.o_drop || hit }
      | Duplicate { src = rs; dst = rd; dir = rdir; p }
        when matches ~rule_src:rs ~rule_dst:rd ~rule_dir:rdir ~dir ~src ~dst ->
          let hit = flip rt p in
          { acc with o_duplicate = acc.o_duplicate || hit }
      | Jitter { src = rs; dst = rd; dir = rdir; max_us }
        when matches ~rule_src:rs ~rule_dst:rd ~rule_dir:rdir ~dir ~src ~dst ->
          let extra = if max_us = 0 then 0 else Crypto.Drbg.uniform_int rt.rt_drbg (max_us + 1) in
          { acc with o_jitter_us = acc.o_jitter_us + extra }
      | _ -> acc)
    { o_drop = false; o_duplicate = false; o_jitter_us = 0 }
    rt.rt_plan.p_directives
