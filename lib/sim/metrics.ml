type dist = { count : int; sum : int; max : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  dists : (string, dist ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; dists = Hashtbl.create 8 }

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let add t name n = cell t name := !(cell t name) + n
let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  match Hashtbl.find_opt t.dists name with
  | Some r -> r := { count = !r.count + 1; sum = !r.sum + v; max = max !r.max v }
  | None -> Hashtbl.add t.dists name (ref { count = 1; sum = v; max = v })

let dist t name = Option.map ( ! ) (Hashtbl.find_opt t.dists name)

let mean d = if d.count = 0 then 0. else float_of_int d.sum /. float_of_int d.count

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.dists

let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let to_list t =
  Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) t.counters []
  |> sorted

(* Unlike [to_list], snapshots keep zero-valued counters: a counter that was
   live in [before] and is 0 in [after] must still show up in [diff]. *)
let snapshot t = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> sorted

(* Hashtable-backed: per-span delta snapshotting calls this thousands of
   times per run, and the old [List.assoc_opt]-per-key version was O(n²). *)
let diff ~before ~after =
  let acc = Hashtbl.create (List.length after + 8) in
  List.iter (fun (k, v) -> Hashtbl.replace acc k v) after;
  List.iter
    (fun (k, v) ->
      let cur = Option.value (Hashtbl.find_opt acc k) ~default:0 in
      Hashtbl.replace acc k (cur - v))
    before;
  Hashtbl.fold (fun k d l -> if d <> 0 then (k, d) :: l else l) acc [] |> sorted
