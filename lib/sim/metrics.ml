type dist = { count : int; sum : int; max : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  dists : (string, dist ref) Hashtbl.t;
  mutable owner : int;
      (* Domain id allowed to mutate, or -1 for unguarded. Lane schedulers
         pin this to the executing domain for the duration of an epoch so
         any cross-lane write — a shared-counter bug that would silently
         lose increments under parallelism — crashes instead. *)
}

let create () = { counters = Hashtbl.create 32; dists = Hashtbl.create 8; owner = -1 }

let self_id () = (Domain.self () :> int)

let guard_here t = t.owner <- self_id ()
let unguard t = t.owner <- -1

let check_owner t =
  if t.owner >= 0 && t.owner <> self_id () then
    failwith "Sim.Metrics: cross-domain write (counter mutated outside its owning lane)"

let cell t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let add t name n =
  check_owner t;
  cell t name := !(cell t name) + n

let incr t name = add t name 1
let get t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let observe t name v =
  check_owner t;
  match Hashtbl.find_opt t.dists name with
  | Some r -> r := { count = !r.count + 1; sum = !r.sum + v; max = max !r.max v }
  | None -> Hashtbl.add t.dists name (ref { count = 1; sum = v; max = v })

let dist t name = Option.map ( ! ) (Hashtbl.find_opt t.dists name)

let mean d = if d.count = 0 then 0. else float_of_int d.sum /. float_of_int d.count

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.dists

let sorted l = List.sort (fun (a, _) (b, _) -> String.compare a b) l

let to_list t =
  Hashtbl.fold (fun k r acc -> if !r <> 0 then (k, !r) :: acc else acc) t.counters []
  |> sorted

(* Unlike [to_list], snapshots keep zero-valued counters: a counter that was
   live in [before] and is 0 in [after] must still show up in [diff]. *)
let snapshot t = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> sorted

(* Hashtable-backed: per-span delta snapshotting calls this thousands of
   times per run, and the old [List.assoc_opt]-per-key version was O(n²). *)
let diff ~before ~after =
  let acc = Hashtbl.create (List.length after + 8) in
  List.iter (fun (k, v) -> Hashtbl.replace acc k v) after;
  List.iter
    (fun (k, v) ->
      let cur = Option.value (Hashtbl.find_opt acc k) ~default:0 in
      Hashtbl.replace acc k (cur - v))
    before;
  Hashtbl.fold (fun k d l -> if d <> 0 then (k, d) :: l else l) acc [] |> sorted

(* Lane-merge: fold [src] into [into] in canonical (sorted) key order. The
   default sums shared keys — the right semantics for per-lane counters of
   the same global quantity ("net.messages" across lanes). [`Fail] asserts
   the key sets are disjoint instead, for merges where an overlap would
   mean two lanes mutated what should have been lane-private state. *)
let merge_into ?(on_conflict = `Sum) ~into src =
  check_owner into;
  List.iter
    (fun (k, v) ->
      (match (on_conflict, Hashtbl.find_opt into.counters k) with
      | `Fail, Some r when !r <> 0 && v <> 0 ->
          failwith (Printf.sprintf "Sim.Metrics.merge_into: key %S present in both" k)
      | _ -> ());
      cell into k := !(cell into k) + v)
    (snapshot src);
  List.iter
    (fun (k, d) ->
      match Hashtbl.find_opt into.dists k with
      | Some r ->
          (match on_conflict with
          | `Fail -> failwith (Printf.sprintf "Sim.Metrics.merge_into: dist %S present in both" k)
          | `Sum -> ());
          r := { count = !r.count + d.count; sum = !r.sum + d.sum; max = max !r.max d.max }
      | None -> Hashtbl.add into.dists k (ref d))
    (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) src.dists [] |> sorted)
