(** Deterministic epoch/barrier scheduler for independent execution lanes.

    A lane is a unit of fully-isolated mutable state (typically one shard's
    replica pair plus its own {!Net}). Lanes run in lock-step epochs: each
    epoch, every lane's [step] executes against the messages delivered to it
    at the previous barrier and emits messages for other lanes, which are
    held until the next barrier and delivered sorted by (source lane,
    emission index). Because lanes share nothing and inter-lane delivery
    order is canonical, the result is bit-for-bit identical whether the
    lanes of an epoch run sequentially on one domain or spread across [N]
    OCaml 5 domains. [domains = 1] never spawns — it is the plain
    synchronous loop the parallel schedule is defined against. *)

type outcome = {
  epochs_run : int;
  delivered : int;  (** cross-lane messages delivered over the whole run *)
  stranded : int;
      (** messages still in flight when [max_epochs] cut the run short; 0 on
          a clean drain *)
}

val seed_for : seed:string -> string -> string
(** [seed_for ~seed shard_id] is the canonical per-lane DRBG stream label,
    ["lane:" ^ seed ^ ":" ^ shard_id]. *)

val run :
  ?max_epochs:int ->
  domains:int ->
  lanes:int ->
  min_epochs:int ->
  step:(epoch:int -> lane:int -> inbox:(int * string) list -> (int * string) list) ->
  unit ->
  outcome
(** [run ~domains ~lanes ~min_epochs ~step ()] drives [lanes] lanes for at
    least [min_epochs] epochs and then keeps going until no cross-lane
    messages are in flight (or [max_epochs], default 10_000, is reached).
    [step ~epoch ~lane ~inbox] receives the lane's mailbox as
    [(source_lane, payload)] pairs in canonical order and returns an outbox
    of [(destination_lane, payload)] pairs. Payloads are opaque strings so
    lanes can never leak shared mutable structure through the mailbox.
    Raises [Invalid_argument] on a self-addressed or out-of-range message.
    [domains] is clamped to [lanes]. *)
