(** Deterministic fault injection for the simulated network.

    A {e fault plan} is a declarative description of how the environment
    misbehaves: per-link probabilistic message drop and duplication, extra
    latency jitter, node crash/restart schedules, and partitions. Plans are
    data — they compose by list concatenation — and every probabilistic
    decision is drawn from an HMAC-DRBG seeded from the plan's seed, so a
    chaos run is reproducible bit-for-bit from [(plan, workload)].

    Plans model the {e environment} and install alongside the adversary tap
    in {!Net} (the tap models an attacker, and runs first — an attacker acts
    at the sender; the environment then loses, duplicates, or delays
    whatever the attacker let through).

    Crashes here are fail-stop unreachability windows: a crashed node keeps
    its state across restart, matching the paper's accounting servers that
    persist accept-once records (Section 7.7). *)

type dir = [ `Request | `Response | `Both ]

type directive =
  | Drop of { src : string option; dst : string option; dir : dir; p : float }
      (** Lose a matching message with probability [p]. [None] matches any
          endpoint. *)
  | Duplicate of { src : string option; dst : string option; dir : dir; p : float }
      (** Deliver a matching message twice with probability [p] — the
          receiver processes both copies (at-least-once delivery). *)
  | Jitter of { src : string option; dst : string option; dir : dir; max_us : int }
      (** Add uniform extra latency in [[0, max_us]] to matching messages. *)
  | Crash of { node : string; at : int; until : int option }
      (** [node] is unreachable from virtual time [at] (inclusive) to
          [until] (exclusive); [None] means it never restarts. *)
  | Partition of { a : string list; b : string list; at : int; until : int option }
      (** Messages between the two groups are cut during the window. *)

type plan

val plan : seed:string -> directive list -> plan
(** Build a plan. The [seed] drives an independent DRBG, so installing a
    plan does not perturb the key/nonce stream of the world under test. *)

val directives : plan -> directive list
val seed : plan -> string

val extend : plan -> directive list -> plan
(** Compose: the extra directives apply after the existing ones. *)

(* -- convenience constructors -- *)

val drop : ?src:string -> ?dst:string -> ?dir:dir -> float -> directive
val duplicate : ?src:string -> ?dst:string -> ?dir:dir -> float -> directive
val jitter : ?src:string -> ?dst:string -> ?dir:dir -> int -> directive
val crash : string -> at:int -> ?until:int -> unit -> directive
val partition : a:string list -> b:string list -> at:int -> ?until:int -> unit -> directive

(** {2 Runtime} — used by {!Net}; holds the plan's private DRBG. *)

type runtime

val runtime : plan -> runtime

val node_down : runtime -> now:int -> string -> bool
(** Is the node inside a crash window at virtual time [now]? *)

val partitioned : runtime -> now:int -> src:string -> dst:string -> bool

type outcome = { o_drop : bool; o_duplicate : bool; o_jitter_us : int }

val transit : runtime -> dir:[ `Request | `Response ] -> src:string -> dst:string -> outcome
(** Evaluate the drop/duplicate/jitter rules for one message in flight,
    consuming DRBG draws for each matching probabilistic rule. Drop wins
    over duplicate when both fire. *)
