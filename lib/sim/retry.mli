(** Client-side resilience: timeouts, bounded retries, capped exponential
    backoff with DRBG jitter.

    In the simulator a lost message surfaces immediately as a transient
    [Error]; a real client only learns about silence by waiting. [run]
    models that: every silent failure charges the caller its timeout on the
    virtual clock, then backs off and retransmits, so chaos benches read
    honest latency numbers that include waiting.

    Determinism: backoff jitter draws from the DRBG handed in, so a whole
    retried workload is reproducible from the environment seed. *)

type backoff = {
  base_us : int;  (** delay before the first retransmission *)
  factor : float;  (** multiplier per further retransmission *)
  cap_us : int;  (** ceiling on the deterministic part of the delay *)
  jitter : float;  (** extra uniform delay, as a fraction of the delay *)
}

val backoff : ?base_us:int -> ?factor:float -> ?cap_us:int -> ?jitter:float -> unit -> backoff
(** Defaults: 1000us base, doubling, 60ms cap, 0.25 jitter. *)

val default_backoff : backoff

val delay_us : backoff -> drbg:Crypto.Drbg.t -> attempt:int -> int
(** Backoff delay before retransmission [attempt] (1-based):
    [min cap (base * factor^(attempt-1))] plus jittered extra. *)

type policy = {
  retries : int;  (** retransmissions after the first attempt *)
  timeout_us : int;  (** how long the client waits out a silent failure *)
  bo : backoff;
}

val policy : ?retries:int -> ?timeout_us:int -> ?backoff:backoff -> unit -> policy
(** Defaults: 4 retries, 10ms timeout, {!default_backoff}. *)

val run :
  clock:Clock.t ->
  drbg:Crypto.Drbg.t ->
  ?metrics:Metrics.t ->
  ?should_retry:(string -> bool) ->
  policy ->
  (unit -> ('a, string) result) ->
  ('a, string) result
(** Run one logical call with at-most-[1 + retries] attempts.
    [should_retry] (default {!Net.transient_error}) decides which errors are
    environmental; a non-retryable error returns immediately. Every
    retryable failure advances the clock by [timeout_us] (the wait that
    detected it), and each retransmission additionally waits out the
    backoff delay.

    With [metrics]: increments ["rpc.calls"], ["rpc.retries"] (one per
    retransmission), ["rpc.gave_up"] (logical calls that exhausted their
    budget), and observes the logical call's total virtual latency —
    retries, timeouts, and backoff included — into the ["rpc.latency_us"]
    distribution. *)
