type backoff = { base_us : int; factor : float; cap_us : int; jitter : float }

let backoff ?(base_us = 1_000) ?(factor = 2.0) ?(cap_us = 60_000) ?(jitter = 0.25) () =
  if base_us < 0 || cap_us < 0 then invalid_arg "Retry.backoff: negative delay";
  if factor < 1.0 then invalid_arg "Retry.backoff: factor below 1";
  if jitter < 0.0 then invalid_arg "Retry.backoff: negative jitter";
  { base_us; factor; cap_us; jitter }

let default_backoff = backoff ()

let delay_us bo ~drbg ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_us: attempt is 1-based";
  let raw = float_of_int bo.base_us *. (bo.factor ** float_of_int (attempt - 1)) in
  let capped = min raw (float_of_int bo.cap_us) in
  let base = int_of_float capped in
  let spread = int_of_float (capped *. bo.jitter) in
  base + if spread > 0 then Crypto.Drbg.uniform_int drbg (spread + 1) else 0

type policy = { retries : int; timeout_us : int; bo : backoff }

let policy ?(retries = 4) ?(timeout_us = 10_000) ?(backoff = default_backoff) () =
  if retries < 0 then invalid_arg "Retry.policy: negative retries";
  if timeout_us < 0 then invalid_arg "Retry.policy: negative timeout";
  { retries; timeout_us; bo = backoff }

let run ~clock ~drbg ?metrics ?(should_retry = Net.transient_error) p f =
  let count name = match metrics with Some m -> Metrics.incr m name | None -> () in
  let t0 = Clock.now clock in
  count "rpc.calls";
  let finish result =
    (match metrics with
    | Some m -> Metrics.observe m "rpc.latency_us" (Clock.now clock - t0)
    | None -> ());
    result
  in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> finish ok
    | Error e as error ->
        if not (should_retry e) then finish error
        else if attempt > p.retries then begin
          (* Out of budget: give up immediately. Only attempts that are
             followed by a retransmission wait out their timeout — charging
             the final attempt a full timeout it never waited for skewed
             every latency distribution upward. *)
          count "rpc.gave_up";
          finish error
        end
        else begin
          (* A transient failure is silent on the wire: the client only
             learns about it by waiting out its timeout. *)
          Clock.advance clock p.timeout_us;
          count "rpc.retries";
          Clock.advance clock (delay_us p.bo ~drbg ~attempt);
          go (attempt + 1)
        end
  in
  go 1
