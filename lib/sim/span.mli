(** Causal spans with per-span cost attribution.

    Where {!Trace} is a flat audit log, a span collector records a tree:
    every instrumented operation opens a span carrying
    [(trace_id, span_id, parent_id, actor, kind)] and its virtual start/end
    times, and on close captures the {!Metrics} delta over its interval.
    The delta is split into {e self} cost (what the span did itself) and
    what its children already claimed, so summing self costs over a traced
    region reproduces the global metrics diff exactly — per-request cost
    attribution with nothing double-counted and nothing lost.

    Nesting is ambient: the sim is synchronous (a server handler runs
    inside the client's {!Net.rpc} call), so a per-collector stack of open
    spans gives correct parentage without any explicit threading. Crossing
    a trust boundary where the ambient stack must not be relied upon (the
    sealed RPC envelope), callers pass an explicit {!context}.

    Ids are minted from a collector-private DRBG seeded from the net seed
    — deterministic per seed, and enabling tracing never perturbs the keys
    or nonces the run would otherwise draw. Completed spans live in a
    bounded ring buffer; overflow drops the oldest and counts it. *)

type span = {
  sp_trace : string;  (** 16-hex trace id shared by one causal tree *)
  sp_id : string;  (** 16-hex span id *)
  sp_parent : string option;
  sp_actor : string;
  sp_kind : string;  (** dotted operation class, e.g. ["rpc.call"] *)
  sp_name : string;  (** optional instance label *)
  sp_start : int;  (** virtual microseconds *)
  sp_end : int;
  sp_attrs : (string * string) list;  (** in attachment order *)
  sp_costs : (string * int) list;
      (** self cost: per-counter metrics delta net of children, sorted *)
}

type context = { ctx_trace : string; ctx_span : string }

type t

val create : ?capacity:int -> seed:string -> clock:Clock.t -> metrics:Metrics.t -> unit -> t
(** [capacity] bounds the completed-span ring (default 65536, min 1). *)

val with_span :
  t option ->
  actor:string ->
  kind:string ->
  ?name:string ->
  ?attrs:(string * string) list ->
  ?parent:context ->
  (unit -> 'a) -> 'a
(** Run [f] inside a span. [None] is a disabled collector: [f] runs bare,
    zero cost — instrumentation sites never branch themselves. [?parent]
    overrides the ambient parent (remote propagation); otherwise the
    innermost open span is the parent, and a span opened with an empty
    stack roots a fresh trace. Exceptions propagate; the span closes with
    an ["error"] attribute. *)

val context : t option -> context option
(** The innermost open span, in the form the RPC envelope carries. *)

val add_attr : t option -> string -> string -> unit
(** Attach an attribute to the innermost open span (no-op when disabled or
    outside any span). *)

val spans : t -> span list
(** Completed spans, oldest first. Children complete before parents. *)

val clear : t -> unit
val dropped : t -> int

val contains_substring : needle:string -> string -> bool
(** Iterative scan — safe on multi-MB strings (the recursive predecessor
    overflowed the stack at a few hundred KB). *)

val find_attr : t -> needle:string -> span list
(** Completed spans whose kind, name, or any attribute value contains
    [needle]. *)

(** {2 Aggregation} *)

val cost_total : span list -> (string * int) list
(** Sum of self costs — equals the global metrics diff over the traced
    region when every tick happened inside some span. *)

val max_depth : span list -> int
(** Longest parent chain resolvable within the list. *)

val actors : span list -> string list
(** Distinct actors, in order of first appearance. *)

(** {2 Exporters} *)

val to_chrome_trace : span list -> string
(** Chrome trace-event JSON (["ph":"X"] complete events, microsecond
    ts/dur, one tid per actor) for chrome://tracing / ui.perfetto.dev.
    Attributes and self costs (prefixed ["cost."]) ride in [args]. *)

val to_jsonl : span list -> string
(** One JSON object per line, fixed key order — byte-identical across
    same-seed runs. *)

val pp_span : Format.formatter -> span -> unit
