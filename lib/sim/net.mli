(** Simulated network and simulation environment.

    Nodes register request handlers by name; clients call {!rpc}. Every
    exchange is metered (messages, bytes) and advances the virtual clock by
    the configured link latency, so protocol-cost experiments read their
    numbers straight from {!Metrics}. An optional {e tap} models an active
    network adversary able to observe, tamper with, or drop traffic — the
    paper's eavesdropper who must not be able to steal capabilities off the
    wire. An optional {e fault plan} ({!Fault}) models the environment:
    seeded probabilistic drop/duplication/jitter, node crash windows, and
    partitions. Tap and plan compose — the tap runs first.

    The environment bundle (clock, DRBG, metrics, trace) lives here too,
    since every service needs all four. *)

type t

val create : ?seed:string -> ?default_latency_us:int -> unit -> t
(** [default_latency_us] is the one-way per-message latency (default 500). *)

val clock : t -> Clock.t
val drbg : t -> Crypto.Drbg.t
val metrics : t -> Metrics.t
val trace : t -> Trace.t

val spans : t -> Span.t option
(** The span collector, when tracing is enabled. Instrumentation sites pass
    this straight to {!Span.with_span}, which is a no-op on [None]. *)

val enable_tracing : ?capacity:int -> t -> unit
(** Attach a fresh {!Span} collector. Its DRBG is seeded ["span:" ^ seed]
    — separate from the environment DRBG, so tracing never perturbs keys,
    nonces, or fault decisions; two traced runs of one seed produce
    byte-identical span trees. [capacity] bounds the completed-span ring. *)

val disable_tracing : t -> unit

val now : t -> int
(** Shorthand for [Clock.now (clock t)]. *)

val fresh_key : t -> string
(** 32 fresh DRBG bytes — the standard symmetric key / proxy key source. *)

val fresh_nonce : t -> string
(** 12 fresh DRBG bytes. *)

val register : t -> name:string -> (string -> string) -> unit
(** Install (or replace) the handler for a node. The handler receives the
    request bytes and returns response bytes. *)

val unregister : t -> name:string -> unit

val set_latency : t -> src:string -> dst:string -> int -> unit
(** Override the one-way latency of a directed link. *)

type tap_action =
  | Deliver  (** pass the message through unchanged *)
  | Replace of string  (** tamper: substitute payload *)
  | Drop  (** lose the message *)

val set_tap : t -> (dir:[ `Request | `Response ] -> src:string -> dst:string -> string -> tap_action) -> unit
val clear_tap : t -> unit

val install_fault_plan : t -> Fault.plan -> unit
(** Install (or replace) the fault plan. Its DRBG is freshly seeded from the
    plan's own seed, so two installs of the same plan behave identically and
    never perturb the environment DRBG. Counters:
    ["fault.dropped"], ["fault.duplicated"], ["fault.jitter_us"],
    ["fault.node_down"], ["fault.partitioned"]. *)

val clear_fault_plan : t -> unit

val set_down : t -> name:string -> unit
(** Mark a node crashed by hand (fail-stop, state kept). Distinct from
    {!unregister}: a down node exists but does not answer — {!rpc} returns
    the transient ["node down"], not ["unknown node ..."]. *)

val set_up : t -> name:string -> unit
val is_down : t -> string -> bool
(** Down by hand or inside a fault-plan crash window at the current time. *)

val transient_error : string -> bool
(** Is this {!rpc} error environmental (dropped/duplicated link, node down,
    partition) — i.e. safe to retry by retransmitting the same bytes —
    rather than a verdict from the service? *)

val rpc : t -> src:string -> dst:string -> string -> (string, string) result
(** One request/response exchange. [Error] covers unknown destination,
    adversarial drops, and injected faults; service-level failures travel
    in-band in the response. Under a fault plan a duplicated request is
    processed by the handler {e twice} (at-least-once delivery) and the
    client reads the later response. *)
