let log_src = Logs.Src.create "sim.net" ~doc:"simulated network traffic"

module Log = (val Logs.src_log log_src : Logs.LOG)

type tap_action = Deliver | Replace of string | Drop

type t = {
  seed : string;
  clock : Clock.t;
  drbg : Crypto.Drbg.t;
  metrics : Metrics.t;
  trace : Trace.t;
  mutable spans : Span.t option;
  nodes : (string, string -> string) Hashtbl.t;
  latency : (string * string, int) Hashtbl.t;
  default_latency_us : int;
  mutable tap : (dir:[ `Request | `Response ] -> src:string -> dst:string -> string -> tap_action) option;
  mutable fault : Fault.runtime option;
  down : (string, unit) Hashtbl.t;
}

let create ?(seed = "proxykit") ?(default_latency_us = 500) () =
  {
    seed;
    clock = Clock.create ();
    drbg = Crypto.Drbg.create ~seed;
    metrics = Metrics.create ();
    trace = Trace.create ();
    spans = None;
    nodes = Hashtbl.create 16;
    latency = Hashtbl.create 16;
    default_latency_us;
    tap = None;
    fault = None;
    down = Hashtbl.create 4;
  }

let clock t = t.clock
let drbg t = t.drbg
let metrics t = t.metrics
let trace t = t.trace
let spans t = t.spans

(* The collector's DRBG is seeded from the net seed (prefixed, like the
   fault plan's), never the shared environment DRBG: enabling tracing does
   not change a single key, nonce, or fault decision of the run. *)
let enable_tracing ?capacity t =
  t.spans <- Some (Span.create ?capacity ~seed:("span:" ^ t.seed) ~clock:t.clock ~metrics:t.metrics ())

let disable_tracing t = t.spans <- None
let now t = Clock.now t.clock
let fresh_key t = Crypto.Drbg.generate t.drbg 32
let fresh_nonce t = Crypto.Drbg.generate t.drbg 12

let register t ~name handler = Hashtbl.replace t.nodes name handler
let unregister t ~name = Hashtbl.remove t.nodes name

let set_latency t ~src ~dst us = Hashtbl.replace t.latency (src, dst) us

let link_latency t src dst =
  match Hashtbl.find_opt t.latency (src, dst) with
  | Some us -> us
  | None -> t.default_latency_us

let set_tap t f = t.tap <- Some f
let clear_tap t = t.tap <- None

let install_fault_plan t plan = t.fault <- Some (Fault.runtime plan)
let clear_fault_plan t = t.fault <- None

let set_down t ~name = Hashtbl.replace t.down name ()
let set_up t ~name = Hashtbl.remove t.down name

let is_down t name =
  Hashtbl.mem t.down name
  || (match t.fault with Some rt -> Fault.node_down rt ~now:(Clock.now t.clock) name | None -> false)

let partitioned t src dst =
  match t.fault with
  | Some rt -> Fault.partitioned rt ~now:(Clock.now t.clock) ~src ~dst
  | None -> false

(* Transport errors a client may safely retry by retransmitting the same
   bytes: the failure is environmental, not a verdict from the service. *)
let err_request_dropped = "request dropped"
let err_response_dropped = "response dropped"
let err_partitioned = "network partitioned"
let err_node_down = "node down"

let transient_error = function
  | e when e = err_request_dropped -> true
  | e when e = err_response_dropped -> true
  | e when e = err_partitioned -> true
  | e when e = err_node_down -> true
  | _ -> false

(* One message over one link: metered, clocked, through the adversary tap
   first (the attacker acts at the sender) and then the fault plan (the
   environment loses, duplicates, or delays what the attacker let through).
   Returns the delivered payload and whether the environment duplicated
   it. *)
let transmit t ~dir ~src ~dst payload =
  Metrics.incr t.metrics "net.messages";
  Metrics.add t.metrics "net.bytes" (String.length payload);
  Clock.advance t.clock (link_latency t src dst);
  let tapped =
    match t.tap with
    | None -> Some payload
    | Some tap -> (
        match tap ~dir ~src ~dst payload with
        | Deliver -> Some payload
        | Replace payload' -> Some payload'
        | Drop ->
            Metrics.incr t.metrics "net.dropped";
            None)
  in
  match tapped with
  | None -> None
  | Some payload' -> (
      match t.fault with
      | None -> Some (payload', false)
      | Some rt ->
          let o = Fault.transit rt ~dir ~src ~dst in
          if o.Fault.o_jitter_us > 0 then begin
            Metrics.add t.metrics "fault.jitter_us" o.Fault.o_jitter_us;
            Clock.advance t.clock o.Fault.o_jitter_us
          end;
          if o.Fault.o_drop then begin
            Metrics.incr t.metrics "fault.dropped";
            None
          end
          else begin
            if o.Fault.o_duplicate then Metrics.incr t.metrics "fault.duplicated";
            Some (payload', o.Fault.o_duplicate)
          end)

let rpc t ~src ~dst request =
  match Hashtbl.find_opt t.nodes dst with
  | None ->
      Log.debug (fun m -> m "[%d] %s -> %s: unknown node" (Clock.now t.clock) src dst);
      Error (Printf.sprintf "unknown node %s" dst)
  | Some handler ->
      if is_down t dst then begin
        (* The message travels; nothing answers. The caller's timeout (see
           Retry) is what turns this silence into a client-side error. *)
        Metrics.incr t.metrics "net.messages";
        Metrics.add t.metrics "net.bytes" (String.length request);
        Clock.advance t.clock (link_latency t src dst);
        Metrics.incr t.metrics "fault.node_down";
        Log.debug (fun m -> m "[%d] %s -> %s: node down" (Clock.now t.clock) src dst);
        Error err_node_down
      end
      else if partitioned t src dst then begin
        Metrics.incr t.metrics "net.messages";
        Metrics.add t.metrics "net.bytes" (String.length request);
        Clock.advance t.clock (link_latency t src dst);
        Metrics.incr t.metrics "fault.partitioned";
        Log.debug (fun m -> m "[%d] %s -> %s: partitioned" (Clock.now t.clock) src dst);
        Error err_partitioned
      end
      else begin
        Log.debug (fun m ->
            m "[%d] %s -> %s: request (%d bytes)" (Clock.now t.clock) src dst
              (String.length request));
        match transmit t ~dir:`Request ~src ~dst request with
        | None -> Error err_request_dropped
        | Some (request', duplicated) -> (
            let response = handler request' in
            let response =
              if duplicated then begin
                (* At-least-once delivery: the duplicate copy also traverses
                   the link and is processed; the client ends up reading the
                   response to the later copy (the earlier one is modelled
                   as superseded in its buffer). *)
                Metrics.incr t.metrics "net.messages";
                Metrics.add t.metrics "net.bytes" (String.length request');
                Clock.advance t.clock (link_latency t src dst);
                handler request'
              end
              else response
            in
            match transmit t ~dir:`Response ~src:dst ~dst:src response with
            | None -> Error err_response_dropped
            | Some (response', _dup) ->
                (* A duplicated response is absorbed by the client: it was
                   already counted by [transmit]. *)
                Log.debug (fun m ->
                    m "[%d] %s <- %s: response (%d bytes)" (Clock.now t.clock) src dst
                      (String.length response'));
                Ok response')
      end
