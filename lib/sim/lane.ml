(* Deterministic epoch/barrier scheduler for independent execution lanes.

   Each lane owns all of its mutable state (its own Net — clock, DRBG,
   metrics, trace, span collector — plus whatever the scenario hangs off
   it); lanes never share a mutable value. Execution proceeds in epochs:
   within an epoch every lane runs its [step] to completion against the
   messages delivered to it at the epoch boundary, producing messages for
   other lanes that are held back until the *next* boundary. Because lanes
   are disjoint and inter-lane traffic is delivered in one canonical sort
   order, running the lanes of an epoch sequentially on one domain or
   spread across N OCaml 5 domains produces bit-for-bit identical lane
   states — parallelism changes wall-clock time and nothing else.

   The [domains = 1] case never spawns: it is the plain synchronous loop,
   and the parallel schedule is defined as "whatever that loop computes".

   Messages are opaque strings (scenarios Wire-encode them), which also
   guarantees cross-lane payloads are deep copies: a lane cannot leak a
   shared mutable structure to another lane through the mailbox. *)

type message = {
  m_src : int;  (** emitting lane *)
  m_seq : int;  (** emission index within the epoch, per source lane *)
  m_payload : string;
}

type outcome = {
  epochs_run : int;
  delivered : int;  (** cross-lane messages delivered over the whole run *)
  stranded : int;  (** messages still in flight when [max_epochs] hit *)
}

let seed_for ~seed lane_id = "lane:" ^ seed ^ ":" ^ lane_id

(* Run the given lane indices sequentially, in increasing order, returning
   each lane's outbox. This is the whole per-domain job: the canonical
   order *within* a domain is fixed, and the canonical merge order across
   domains is re-imposed at the barrier, so the partition of lanes onto
   domains is invisible to the result. *)
let run_chunk ~step ~epoch ~inboxes indices =
  List.map
    (fun lane ->
      let inbox = inboxes.(lane) in
      inboxes.(lane) <- [];
      (lane, step ~epoch ~lane ~inbox))
    indices

let run ?(max_epochs = 10_000) ~domains ~lanes ~min_epochs ~step () =
  if lanes < 1 then invalid_arg "Lane.run: at least one lane";
  if domains < 1 then invalid_arg "Lane.run: at least one domain";
  if min_epochs < 0 then invalid_arg "Lane.run: min_epochs must be non-negative";
  let domains = min domains lanes in
  let inboxes = Array.make lanes [] in
  let in_flight = ref 0 in
  let delivered = ref 0 in
  let epoch = ref 0 in
  (* Lane -> domain assignment is round-robin and fixed for the whole run;
     any assignment would do (determinism does not depend on it), but a
     stable one keeps per-domain load even and cache-friendly. *)
  let chunks =
    Array.init domains (fun d ->
        List.filter (fun l -> l mod domains = d) (List.init lanes Fun.id))
  in
  while (!epoch < min_epochs || !in_flight > 0) && !epoch < max_epochs do
    let results =
      if domains = 1 then run_chunk ~step ~epoch:!epoch ~inboxes chunks.(0)
      else begin
        (* Spawn domains for chunks 1..N-1, run chunk 0 on this domain,
           then join — Domain.join is the epoch barrier, and its memory
           ordering makes every lane's writes visible before the merge. *)
        let spawned =
          Array.init (domains - 1) (fun i ->
              let indices = chunks.(i + 1) in
              Domain.spawn (fun () -> run_chunk ~step ~epoch:!epoch ~inboxes indices))
        in
        let own = run_chunk ~step ~epoch:!epoch ~inboxes chunks.(0) in
        Array.fold_left (fun acc d -> acc @ Domain.join d) own spawned
      end
    in
    (* Canonical delivery: route every emitted message, then sort each
       destination's mailbox by (source lane, emission index). The order
       results arrive from the domains is irrelevant. *)
    in_flight := 0;
    let pending = Array.make lanes [] in
    List.iter
      (fun (src, outbox) ->
        List.iteri
          (fun seq (dst, payload) ->
            if dst < 0 || dst >= lanes then invalid_arg "Lane.run: message to unknown lane";
            if dst = src then invalid_arg "Lane.run: lane messaged itself";
            pending.(dst) <- { m_src = src; m_seq = seq; m_payload = payload } :: pending.(dst))
          outbox)
      results;
    Array.iteri
      (fun dst msgs ->
        let sorted =
          List.sort
            (fun a b -> compare (a.m_src, a.m_seq) (b.m_src, b.m_seq))
            msgs
        in
        in_flight := !in_flight + List.length sorted;
        delivered := !delivered + List.length sorted;
        inboxes.(dst) <- List.map (fun m -> (m.m_src, m.m_payload)) sorted)
      pending;
    incr epoch
  done;
  let stranded = !in_flight in
  { epochs_run = !epoch; delivered = !delivered - stranded; stranded }
