type entry = { time : int; actor : string; event : string }
type t = { mutable rev_entries : entry list }

let create () = { rev_entries = [] }
let record t ~time ~actor event = t.rev_entries <- { time; actor; event } :: t.rev_entries
let entries t = List.rev t.rev_entries

(* The scan lives in [Span] now (iterative — the old recursive version
   overflowed the stack on multi-hundred-KB events). *)
let contains_substring hay needle = Span.contains_substring ~needle hay

let find t ~actor ~substring =
  List.find_opt (fun e -> e.actor = actor && contains_substring e.event substring) (entries t)

let clear t = t.rev_entries <- []

let pp_entry fmt e = Format.fprintf fmt "[%8dus] %-20s %s" e.time e.actor e.event
