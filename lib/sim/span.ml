type span = {
  sp_trace : string;
  sp_id : string;
  sp_parent : string option;
  sp_actor : string;
  sp_kind : string;
  sp_name : string;
  sp_start : int;
  sp_end : int;
  sp_attrs : (string * string) list;
  sp_costs : (string * int) list;
}

type context = { ctx_trace : string; ctx_span : string }

(* An open span. [fr_before] is the metrics snapshot at entry; [fr_children]
   accumulates the *total* (inclusive) cost of each closed child so the
   parent's self cost can be computed by subtraction on close. *)
type frame = {
  fr_trace : string;
  fr_id : string;
  fr_parent : string option;
  fr_actor : string;
  fr_kind : string;
  fr_name : string;
  fr_start : int;
  fr_before : (string * int) list;
  mutable fr_attrs : (string * string) list;
  fr_children : (string, int) Hashtbl.t;
}

type t = {
  clock : Clock.t;
  metrics : Metrics.t;
  drbg : Crypto.Drbg.t;
  capacity : int;
  ring : span option array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;
  mutable stack : frame list;
}

let create ?(capacity = 65_536) ~seed ~clock ~metrics () =
  let capacity = max 1 capacity in
  {
    clock;
    metrics;
    drbg = Crypto.Drbg.create ~seed;
    capacity;
    ring = Array.make capacity None;
    next = 0;
    count = 0;
    dropped = 0;
    stack = [];
  }

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

(* Ids come from a collector-private DRBG (seeded from the net seed, not the
   shared environment DRBG), so enabling tracing never perturbs the keys and
   nonces a run would otherwise draw — same trick as [Fault.runtime]. *)
let mint t = hex (Crypto.Drbg.generate t.drbg 8)

let push_ring t s =
  t.ring.(t.next) <- Some s;
  t.next <- (t.next + 1) mod t.capacity;
  if t.count = t.capacity then t.dropped <- t.dropped + 1 else t.count <- t.count + 1

let spans t =
  let first = if t.count = t.capacity then t.next else 0 in
  List.init t.count (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some s -> s
      | None -> assert false)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0;
  t.stack <- []

let dropped t = t.dropped

let enter t ~actor ~kind ~name ~attrs ~parent =
  let trace, parent_id =
    match (parent, t.stack) with
    | Some ctx, _ -> (ctx.ctx_trace, Some ctx.ctx_span)
    | None, top :: _ -> (top.fr_trace, Some top.fr_id)
    | None, [] -> (mint t, None)
  in
  let fr =
    {
      fr_trace = trace;
      fr_id = mint t;
      fr_parent = parent_id;
      fr_actor = actor;
      fr_kind = kind;
      fr_name = name;
      fr_start = Clock.now t.clock;
      fr_before = Metrics.snapshot t.metrics;
      fr_attrs = attrs;
      fr_children = Hashtbl.create 8;
    }
  in
  t.stack <- fr :: t.stack

let exit_frame t =
  match t.stack with
  | [] -> ()
  | fr :: rest ->
      t.stack <- rest;
      let total = Metrics.diff ~before:fr.fr_before ~after:(Metrics.snapshot t.metrics) in
      (* Self cost = own-interval delta minus everything attributed to
         children; summed over a trace, self costs reproduce the global
         metrics diff exactly. *)
      let self =
        List.filter_map
          (fun (k, v) ->
            let c = Option.value (Hashtbl.find_opt fr.fr_children k) ~default:0 in
            if v - c <> 0 then Some (k, v - c) else None)
          total
      in
      (match rest with
      | up :: _ ->
          List.iter
            (fun (k, v) ->
              let cur = Option.value (Hashtbl.find_opt up.fr_children k) ~default:0 in
              Hashtbl.replace up.fr_children k (cur + v))
            total
      | [] -> ());
      push_ring t
        {
          sp_trace = fr.fr_trace;
          sp_id = fr.fr_id;
          sp_parent = fr.fr_parent;
          sp_actor = fr.fr_actor;
          sp_kind = fr.fr_kind;
          sp_name = fr.fr_name;
          sp_start = fr.fr_start;
          sp_end = Clock.now t.clock;
          sp_attrs = List.rev fr.fr_attrs;
          sp_costs = self;
        }

let add_attr t k v =
  match t with
  | None -> ()
  | Some t -> ( match t.stack with [] -> () | fr :: _ -> fr.fr_attrs <- (k, v) :: fr.fr_attrs)

let context t =
  match t with
  | None -> None
  | Some t -> (
      match t.stack with
      | [] -> None
      | fr :: _ -> Some { ctx_trace = fr.fr_trace; ctx_span = fr.fr_id })

let with_span t ~actor ~kind ?(name = "") ?(attrs = []) ?parent f =
  match t with
  | None -> f ()
  | Some t -> (
      enter t ~actor ~kind ~name ~attrs:(List.rev attrs) ~parent;
      match f () with
      | v ->
          exit_frame t;
          v
      | exception e ->
          add_attr (Some t) "error" (Printexc.to_string e);
          exit_frame t;
          raise e)

(* Iterative substring scan: the old recursive version burned one stack
   frame per haystack character and overflowed on multi-hundred-KB events. *)
let contains_substring ~needle hay =
  let nn = String.length needle and nh = String.length hay in
  if nn = 0 then true
  else if nn > nh then false
  else begin
    let limit = nh - nn in
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= limit do
      let j = ref 0 in
      while !j < nn && String.unsafe_get hay (!i + !j) = String.unsafe_get needle !j do
        incr j
      done;
      if !j = nn then found := true else incr i
    done;
    !found
  end

let matches ~needle s =
  contains_substring ~needle s.sp_kind
  || contains_substring ~needle s.sp_name
  || List.exists (fun (_, v) -> contains_substring ~needle v) s.sp_attrs

let find_attr t ~needle = List.filter (matches ~needle) (spans t)

(* ------------------------------------------------------------------ *)
(* Aggregation helpers                                                 *)

let cost_total spans =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      List.iter
        (fun (k, v) ->
          let cur = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
          Hashtbl.replace tbl k (cur + v))
        s.sp_costs)
    spans;
  Hashtbl.fold (fun k v acc -> if v <> 0 then (k, v) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let max_depth spans =
  let by_id = Hashtbl.create (List.length spans) in
  List.iter (fun s -> Hashtbl.replace by_id s.sp_id s) spans;
  let memo = Hashtbl.create (List.length spans) in
  let rec depth id =
    match Hashtbl.find_opt memo id with
    | Some d -> d
    | None ->
        let d =
          match Hashtbl.find_opt by_id id with
          | None -> 0
          | Some s -> (
              match s.sp_parent with
              | None -> 1
              | Some p -> 1 + depth p)
        in
        Hashtbl.replace memo id d;
        d
  in
  List.fold_left (fun acc s -> max acc (depth s.sp_id)) 0 spans

let actors spans =
  List.fold_left (fun acc s -> if List.mem s.sp_actor acc then acc else s.sp_actor :: acc) [] spans
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let label s = if s.sp_name = "" then s.sp_kind else s.sp_kind ^ " " ^ s.sp_name

let add_args b s =
  Buffer.add_string b (Printf.sprintf {|"trace_id":"%s","span_id":"%s"|} s.sp_trace s.sp_id);
  (match s.sp_parent with
  | Some p -> Buffer.add_string b (Printf.sprintf {|,"parent_id":"%s"|} p)
  | None -> ());
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf {|,"%s":"%s"|} (json_escape k) (json_escape v)))
    s.sp_attrs;
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf {|,"cost.%s":%d|} (json_escape k) v))
    s.sp_costs

(* Chrome trace-event format ("X" complete events, microsecond ts/dur —
   matching the virtual clock's unit), loadable in chrome://tracing or
   https://ui.perfetto.dev. One tid per actor, named via "M" metadata. *)
let to_chrome_trace spans =
  let b = Buffer.create 4096 in
  Buffer.add_string b {|{"traceEvents":[|};
  let tids = Hashtbl.create 8 in
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  List.iter
    (fun a ->
      let tid = Hashtbl.length tids + 1 in
      Hashtbl.replace tids a tid;
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           {|{"ph":"M","pid":1,"tid":%d,"name":"thread_name","args":{"name":"%s"}}|} tid
           (json_escape a)))
    (actors spans);
  List.iter
    (fun s ->
      let tid = Option.value (Hashtbl.find_opt tids s.sp_actor) ~default:0 in
      sep ();
      Buffer.add_string b
        (Printf.sprintf {|{"ph":"X","pid":1,"tid":%d,"ts":%d,"dur":%d,"name":"%s","cat":"%s","args":{|}
           tid s.sp_start
           (max 1 (s.sp_end - s.sp_start))
           (json_escape (label s)) (json_escape s.sp_kind));
      add_args b s;
      Buffer.add_string b "}}")
    spans;
  Buffer.add_string b {|],"displayTimeUnit":"ms"}|};
  Buffer.contents b

(* One span per line, fixed key order: byte-identical across same-seed runs. *)
let to_jsonl spans =
  let b = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf {|{"trace":"%s","span":"%s","parent":%s,"actor":"%s","kind":"%s"|}
           s.sp_trace s.sp_id
           (match s.sp_parent with Some p -> Printf.sprintf {|"%s"|} p | None -> "null")
           (json_escape s.sp_actor) (json_escape s.sp_kind));
      if s.sp_name <> "" then
        Buffer.add_string b (Printf.sprintf {|,"name":"%s"|} (json_escape s.sp_name));
      Buffer.add_string b (Printf.sprintf {|,"start":%d,"end":%d|} s.sp_start s.sp_end);
      Buffer.add_string b {|,"attrs":{|};
      let first = ref true in
      List.iter
        (fun (k, v) ->
          if !first then first := false else Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf {|"%s":"%s"|} (json_escape k) (json_escape v)))
        s.sp_attrs;
      Buffer.add_string b {|},"costs":{|};
      let first = ref true in
      List.iter
        (fun (k, v) ->
          if !first then first := false else Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf {|"%s":%d|} (json_escape k) v))
        s.sp_costs;
      Buffer.add_string b "}}\n")
    spans;
  Buffer.contents b

let pp_span fmt s =
  Format.fprintf fmt "[%8d..%8dus] %-20s %s" s.sp_start s.sp_end s.sp_actor (label s)
