(** Named counters and distributions.

    The benches report protocol costs as counted quantities — messages,
    bytes, signatures, MAC operations — rather than wall-clock noise, so
    every interesting operation in the stack increments a counter here.
    Counter names are dotted paths, e.g. ["net.messages"], ["rsa.verify"].

    Distribution cells ({!observe}) record count/sum/max of a sampled value
    — e.g. per-RPC latency including retries — where a plain running total
    would hide the shape. *)

type t

val create : unit -> t
val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** Missing counters read as 0. *)

type dist = { count : int; sum : int; max : int }

val observe : t -> string -> int -> unit
(** Record one sample into the named distribution cell. *)

val dist : t -> string -> dist option
val mean : dist -> float

val reset : t -> unit

val to_list : t -> (string * int) list
(** All non-zero counters, sorted by name (display form). *)

val snapshot : t -> (string * int) list
(** All counters {e including zeros}, sorted by name — the form [diff]
    wants, so a counter reset to 0 between snapshots still shows up. *)

val diff : before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter deltas over the union of keys (non-zero deltas only), for
    measuring a single operation. *)

val guard_here : t -> unit
(** Pin mutation to the calling domain: until {!unguard}, [incr]/[add]/
    [observe]/[merge_into] from any other domain raise. Lane schedulers set
    this at each epoch's lane entry so a cross-lane shared-counter bug
    crashes loudly instead of silently losing increments under parallel
    execution. *)

val unguard : t -> unit
(** Lift the {!guard_here} pin (e.g. before a barrier-side merge). *)

val merge_into : ?on_conflict:[ `Sum | `Fail ] -> into:t -> t -> unit
(** Fold the second table into [into], walking keys in canonical (sorted)
    order so the merged table is independent of either table's hash
    layout. [`Sum] (default) adds shared counters and pools shared
    distribution cells; [`Fail] raises on any key live in both — for
    merges of lane-private namespaces where an overlap is a bug. *)
