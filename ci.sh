#!/bin/sh
# CI entry point: build, full test suite, then a fixed-seed chaos smoke
# matrix (the robustness invariants — value conservation and at-most-once
# check redemption — must hold under every configuration; proxykit chaos
# exits non-zero on violation).
set -eu

cd "$(dirname "$0")"

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== chaos smoke matrix =="
run_chaos () {
    echo "-- proxykit chaos $*"
    dune exec --no-build bin/proxykit.exe -- chaos "$@"
}
run_chaos --seed ci-calm   --drop 0.05 --duplicate 0.05 --no-crash
run_chaos --seed ci-storm  --drop 0.25 --duplicate 0.10
run_chaos --seed ci-dupes  --drop 0.10 --duplicate 0.25 --no-crash
run_chaos --seed ci-crashy --drop 0.15 --duplicate 0.10 --retries 10

echo "== cluster failover smoke =="
# Sharded accounting cluster: a seeded fault plan permanently crashes one
# shard's primary mid-clearing; the run must keep value conserved with
# exactly-once check redemption across the failover, and a same-seed rerun
# must be byte-identical (metrics snapshot and trace).
dune exec --no-build bin/proxykit.exe -- cluster --smoke
dune exec --no-build bin/proxykit.exe -- cluster --smoke --seed ci-cluster --shards 2 --crash-buyer
# Lane-parallel engine: the same seeded workload spread over 4 OCaml
# domains must be byte-identical (metrics, trace, span JSONL) to the
# single-domain schedule, with conservation, exactly-once redemption, and
# a bulletin landing on every lane.
dune exec --no-build bin/proxykit.exe -- cluster --smoke --domains 4

echo "== model-based conformance smoke =="
# Generated authorization programs run against the real stack (verify cache
# on and off) and a pure reference model; any disagreement fails. The smoke
# also checks each injected stack mutation is caught (the harness can kill
# mutants) and replays the committed shrunk repros in test/repros/.
dune exec --no-build bin/proxykit.exe -- mbt --smoke

echo "== permission-sequence smoke =="
# Two-server context-aware sequence scenario: a stateful Sequence restriction
# requires a file-server 'open' before a bank 'debit'. Gates: the out-of-order
# debit is denied, the in-order run clears exactly once, progress replicates
# to the standby and survives a mid-sequence primary crash (the post-failover
# debit succeeds without re-opening), and a same-seed rerun is byte-identical.
dune exec --no-build bin/proxykit.exe -- seq --smoke

echo "== revocation storm smoke =="
# Seeded revocation-under-churn scenario: bulletins revoke live chains while
# a partition drives one server past its staleness bound. Fresh servers must
# deny within one epoch, the stale server must fail closed and recover on
# heal, refreshed short-TTL chains must survive a grantor-epoch revocation,
# bulletins must land on both bank replicas, and a same-seed rerun must be
# byte-identical.
dune exec --no-build bin/proxykit.exe -- revoke --smoke

echo "== cross-realm federation smoke =="
# Three federated realms on one net: forged inter-realm TGTs (foreign and
# local client realms) must be refused with the pinned realm-mismatch
# error, the legitimate three-realm cascaded grant->present must be
# served, the granter must recover from an inter-realm rekey, and the
# membership replica must serve through a partition of the origin realm,
# fail closed past its staleness bound, recover on heal — byte-identical
# on a same-seed rerun.
dune exec --no-build bin/proxykit.exe -- federate --smoke
# Lane-parallel variant: one realm per lane, signed membership snapshots
# ringing between lanes; the 2-domain digest must be byte-identical to the
# single-domain schedule.
dune exec --no-build bin/proxykit.exe -- federate --smoke --domains 2

echo "== open-loop load smoke =="
# Deterministic open-loop mixed workload from a lazily-materialized 100k
# Zipf population against the full stack. Gates: the batched hot path must
# engage (link-cache hits, coalesced sweep batches, replication read-skips)
# and same-seed reruns must be byte-identical — metrics, trace, and span
# JSONL — with batching on and off.
dune exec --no-build bin/proxykit.exe -- load --smoke

echo "== causal tracing smoke =="
# A traced cascaded-authorization run must show >= 4 causally nested spans
# across >= 3 actors with a retry child under the injected drop, per-span
# self costs summing exactly to the global metrics diff, a valid Chrome
# export, and byte-identical JSONL on a same-seed rerun.
dune exec --no-build bin/proxykit.exe -- trace f4 --smoke
dune exec --no-build bin/proxykit.exe -- trace f5 --smoke

echo "== wire-codec fuzz smoke =="
# Mutated encodings must never crash a decoder (fail closed), valid seeds
# must round-trip, and the committed corpus in test/fuzz_corpus/ replays.
dune exec --no-build bin/proxykit.exe -- fuzz --smoke

echo "== bench smoke (logical metrics vs committed baseline) =="
# Reduced-iteration F1/F4/F6/S1/R1/L1/X1 regenerate BENCH_*.json into a
# scratch dir;
# bench-check validates the JSON schema and compares every integer metric
# (ops, bytes, crypto-op counts) exactly against the committed baseline.
# Wall-times are recorded in the artifacts but never gated.
BENCH_SMOKE_DIR=$(mktemp -d)
BENCH_FAST=1 BENCH_DIR="$BENCH_SMOKE_DIR" \
    dune exec --no-build bin/proxykit.exe -- bench f1 f4 f6 s1 r1 l1 x1
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_F1.json "$BENCH_SMOKE_DIR/BENCH_F1.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_F4.json "$BENCH_SMOKE_DIR/BENCH_F4.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_F6.json "$BENCH_SMOKE_DIR/BENCH_F6.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_S1.json "$BENCH_SMOKE_DIR/BENCH_S1.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_R1.json "$BENCH_SMOKE_DIR/BENCH_R1.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_L1.json "$BENCH_SMOKE_DIR/BENCH_L1.json"
dune exec --no-build bin/proxykit.exe -- bench-check \
    bench/BENCH_X1.json "$BENCH_SMOKE_DIR/BENCH_X1.json"
rm -rf "$BENCH_SMOKE_DIR"

echo "== OK =="
