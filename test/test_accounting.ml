(* The distributed accounting service: ledgers, check clearing across
   servers (Fig. 5), certified and cashier's checks, and the attacks the
   restrictions must stop. *)

module W = Testkit

let usd = "usd"

(* --- ledger unit tests --- *)

let carol_p = Principal.make ~realm:"x" "carol"

let test_ledger_basics () =
  let l = Ledger.create () in
  Alcotest.(check bool) "open" true (Ledger.open_account l ~owner:carol_p ~name:"a" = Ok ());
  Alcotest.(check bool) "duplicate refused" true
    (Result.is_error (Ledger.open_account l ~owner:carol_p ~name:"a"));
  Alcotest.(check bool) "mint" true (Ledger.mint l ~name:"a" ~currency:usd 100 = Ok ());
  Alcotest.(check int) "balance" 100 (Ledger.balance l ~name:"a" ~currency:usd);
  Alcotest.(check int) "other currency zero" 0 (Ledger.balance l ~name:"a" ~currency:"pages");
  Alcotest.(check bool) "debit" true (Ledger.debit l ~name:"a" ~currency:usd 30 = Ok ());
  Alcotest.(check bool) "overdraft refused" true
    (Result.is_error (Ledger.debit l ~name:"a" ~currency:usd 71));
  Alcotest.(check bool) "negative refused" true
    (Result.is_error (Ledger.credit l ~name:"a" ~currency:usd (-5)));
  Alcotest.(check bool) "unknown account" true
    (Result.is_error (Ledger.debit l ~name:"zz" ~currency:usd 1))

let test_ledger_transfer_and_total () =
  let l = Ledger.create () in
  ignore (Ledger.open_account l ~owner:carol_p ~name:"a");
  ignore (Ledger.open_account l ~owner:carol_p ~name:"b");
  ignore (Ledger.mint l ~name:"a" ~currency:usd 100);
  Alcotest.(check bool) "transfer" true (Ledger.transfer l ~from_:"a" ~to_:"b" ~currency:usd 40 = Ok ());
  Alcotest.(check int) "a" 60 (Ledger.balance l ~name:"a" ~currency:usd);
  Alcotest.(check int) "b" 40 (Ledger.balance l ~name:"b" ~currency:usd);
  Alcotest.(check int) "total conserved" 100 (Ledger.total l ~currency:usd);
  Alcotest.(check bool) "transfer to unknown refused" true
    (Result.is_error (Ledger.transfer l ~from_:"a" ~to_:"zz" ~currency:usd 1))

let test_ledger_holds () =
  let l = Ledger.create () in
  ignore (Ledger.open_account l ~owner:carol_p ~name:"a");
  ignore (Ledger.mint l ~name:"a" ~currency:usd 100);
  Alcotest.(check bool) "hold" true (Ledger.hold l ~name:"a" ~id:"ck1" ~currency:usd 30 = Ok ());
  Alcotest.(check int) "available drops" 70 (Ledger.balance l ~name:"a" ~currency:usd);
  Alcotest.(check int) "held" 30 (Ledger.held l ~name:"a" ~currency:usd);
  Alcotest.(check int) "total unchanged" 100 (Ledger.total l ~currency:usd);
  Alcotest.(check bool) "duplicate hold refused" true
    (Result.is_error (Ledger.hold l ~name:"a" ~id:"ck1" ~currency:usd 10));
  Alcotest.(check bool) "hold beyond funds refused" true
    (Result.is_error (Ledger.hold l ~name:"a" ~id:"ck2" ~currency:usd 80));
  (match Ledger.take_hold l ~name:"a" ~id:"ck1" with
  | Ok (c, amt) ->
      Alcotest.(check string) "currency" usd c;
      Alcotest.(check int) "amount" 30 amt
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "held gone" 0 (Ledger.held l ~name:"a" ~currency:usd);
  ignore (Ledger.hold l ~name:"a" ~id:"ck3" ~currency:usd 20);
  Alcotest.(check bool) "release" true (Ledger.release_hold l ~name:"a" ~id:"ck3" = Ok ());
  Alcotest.(check int) "released back" 70 (Ledger.balance l ~name:"a" ~currency:usd)

(* Regression: balances are native ints and addition used to wrap. A credit
   that would overflow must be refused with the balance intact, compound
   operations must compensate their earlier steps, and read-side sums
   (held, total) saturate at max_int instead of going negative. *)
let test_ledger_overflow () =
  let l = Ledger.create () in
  ignore (Ledger.open_account l ~owner:carol_p ~name:"a");
  ignore (Ledger.open_account l ~owner:carol_p ~name:"b");
  Alcotest.(check bool) "mint max_int" true (Ledger.mint l ~name:"a" ~currency:usd max_int = Ok ());
  (match Ledger.credit l ~name:"a" ~currency:usd 1 with
  | Ok () -> Alcotest.fail "credit past max_int accepted (balance would wrap)"
  | Error e -> Alcotest.(check string) "overflow named" "balance overflow" e);
  Alcotest.(check int) "balance intact after refusal" max_int
    (Ledger.balance l ~name:"a" ~currency:usd);
  (* transfer into a full account: the already-performed debit is undone *)
  ignore (Ledger.mint l ~name:"b" ~currency:usd 10);
  Alcotest.(check bool) "transfer into full account refused" true
    (Result.is_error (Ledger.transfer l ~from_:"b" ~to_:"a" ~currency:usd 5));
  Alcotest.(check int) "debit compensated" 10 (Ledger.balance l ~name:"b" ~currency:usd);
  Alcotest.(check int) "target untouched" max_int (Ledger.balance l ~name:"a" ~currency:usd)

let test_ledger_held_saturates () =
  let l = Ledger.create () in
  ignore (Ledger.open_account l ~owner:carol_p ~name:"a");
  ignore (Ledger.mint l ~name:"a" ~currency:usd max_int);
  Alcotest.(check bool) "hold h1" true (Ledger.hold l ~name:"a" ~id:"h1" ~currency:usd max_int = Ok ());
  ignore (Ledger.mint l ~name:"a" ~currency:usd max_int);
  Alcotest.(check bool) "hold h2" true (Ledger.hold l ~name:"a" ~id:"h2" ~currency:usd max_int = Ok ());
  (* 2 * max_int wraps negative as native addition; the fold saturates *)
  Alcotest.(check int) "held saturates" max_int (Ledger.held l ~name:"a" ~currency:usd);
  Alcotest.(check int) "total saturates" max_int (Ledger.total l ~currency:usd)

let test_ledger_release_hold_compensates () =
  let l = Ledger.create () in
  ignore (Ledger.open_account l ~owner:carol_p ~name:"a");
  ignore (Ledger.mint l ~name:"a" ~currency:usd 10);
  Alcotest.(check bool) "hold" true (Ledger.hold l ~name:"a" ~id:"h" ~currency:usd 10 = Ok ());
  ignore (Ledger.mint l ~name:"a" ~currency:usd max_int);
  (* releasing the hold would credit past max_int: the hold must be
     restored, not silently dropped with the money *)
  Alcotest.(check bool) "release refused" true
    (Result.is_error (Ledger.release_hold l ~name:"a" ~id:"h"));
  Alcotest.(check int) "hold restored" 10 (Ledger.held l ~name:"a" ~currency:usd);
  Alcotest.(check int) "balance untouched" max_int (Ledger.balance l ~name:"a" ~currency:usd)

(* --- two-bank world --- *)

type bank_world = {
  w : W.world;
  carol : Principal.t;  (* payor C, banks at bank2 *)
  carol_rsa : Crypto.Rsa.private_;
  shop : Principal.t;  (* payee S, banks at bank1 *)
  shop_rsa : Crypto.Rsa.private_;
  bank1 : Accounting_server.t;
  bank1_name : Principal.t;
  bank2 : Accounting_server.t;
  bank2_name : Principal.t;
  lookup : Principal.t -> Crypto.Rsa.public option;
}

let bank_world ?(seed = "accounting tests") () =
  let w = W.create ~seed () in
  let drbg = Sim.Net.drbg w.W.net in
  let carol, _ = W.enrol w "carol" in
  let shop, _ = W.enrol w "shop" in
  let b1, b1key = W.enrol w "bank1" in
  let b2, b2key = W.enrol w "bank2" in
  let carol_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let shop_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let b1_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let b2_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir carol carol_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir shop shop_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir b1 b1_rsa.Crypto.Rsa.pub;
  Directory.add_public w.W.dir b2 b2_rsa.Crypto.Rsa.pub;
  let lookup p = Directory.public w.W.dir p in
  let bank1 =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:b1 ~my_key:b1key ~kdc:w.W.kdc_name
         ~signing_key:b1_rsa ~lookup ())
  in
  let bank2 =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:b2 ~my_key:b2key ~kdc:w.W.kdc_name
         ~signing_key:b2_rsa ~lookup ())
  in
  Accounting_server.install bank1;
  Accounting_server.install bank2;
  (* Open and fund the accounts. *)
  let tgt_c = W.login w carol in
  let creds_c2 = W.credentials_for w ~tgt:tgt_c b2 in
  (match Accounting_server.open_account w.W.net ~creds:creds_c2 ~name:"carol-checking" with
  | Ok () -> ()
  | Error e -> failwith e);
  ignore (Ledger.mint (Accounting_server.ledger bank2) ~name:"carol-checking" ~currency:usd 1000);
  let tgt_s = W.login w shop in
  let creds_s1 = W.credentials_for w ~tgt:tgt_s b1 in
  (match Accounting_server.open_account w.W.net ~creds:creds_s1 ~name:"shop-till" with
  | Ok () -> ()
  | Error e -> failwith e);
  {
    w; carol; carol_rsa; shop; shop_rsa;
    bank1; bank1_name = b1; bank2; bank2_name = b2; lookup;
  }

let creds_for bw who bank =
  let tgt = W.login bw.w who in
  W.credentials_for bw.w ~tgt bank

let write_check bw ?(amount = 100) ?(currency = usd) () =
  let now = W.now bw.w in
  Check.write ~drbg:(Sim.Net.drbg bw.w.W.net) ~now ~expires:(now + (24 * W.hour))
    ~payor:bw.carol ~payor_key:bw.carol_rsa
    ~account:(Accounting_server.account bw.bank2 "carol-checking") ~payee:bw.shop ~currency
    ~amount ()

let balances bw =
  ( Ledger.balance (Accounting_server.ledger bw.bank2) ~name:"carol-checking" ~currency:usd,
    Ledger.balance (Accounting_server.ledger bw.bank1) ~name:"shop-till" ~currency:usd )

let grand_total bw =
  Ledger.total (Accounting_server.ledger bw.bank1) ~currency:usd
  + Ledger.total (Accounting_server.ledger bw.bank2) ~currency:usd

let test_rpc_accounts () =
  let bw = bank_world () in
  let creds = creds_for bw bw.carol bw.bank2_name in
  (match Accounting_server.balance bw.w.W.net ~creds ~name:"carol-checking" ~currency:usd with
  | Ok (available, held) ->
      Alcotest.(check int) "available" 1000 available;
      Alcotest.(check int) "held" 0 held
  | Error e -> Alcotest.fail e);
  (* Only the owner can read a balance. *)
  let creds_shop = creds_for bw bw.shop bw.bank2_name in
  (match
     Accounting_server.balance bw.w.W.net ~creds:creds_shop ~name:"carol-checking" ~currency:usd
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-owner read a balance");
  (* Local transfer. *)
  (match Accounting_server.open_account bw.w.W.net ~creds ~name:"carol-savings" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match
     Accounting_server.transfer bw.w.W.net ~creds ~from_:"carol-checking" ~to_:"carol-savings"
       ~currency:usd ~amount:250
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "moved" 250
    (Ledger.balance (Accounting_server.ledger bw.bank2) ~name:"carol-savings" ~currency:usd)

let test_cross_bank_check () =
  let bw = bank_world () in
  let total0 = grand_total bw in
  let check = write_check bw ~amount:100 () in
  let creds = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok amount -> Alcotest.(check int) "cleared amount" 100 amount
  | Error e -> Alcotest.fail e);
  let carol_b, shop_b = balances bw in
  Alcotest.(check int) "payor debited" 900 carol_b;
  Alcotest.(check int) "payee credited" 100 shop_b;
  Alcotest.(check int) "conservation" total0 (grand_total bw);
  (* The audit trail mentions the payment at the drawee. *)
  Alcotest.(check bool) "drawee traced payment" true
    (Sim.Trace.find (Sim.Net.trace bw.w.W.net)
       ~actor:(Principal.to_string bw.bank2_name) ~substring:check.Check.number
    <> None)

let test_same_bank_check () =
  (* Carol also banks at bank1: check clears without any inter-server
     message. *)
  let bw = bank_world () in
  let creds_c1 = creds_for bw bw.carol bw.bank1_name in
  (match Accounting_server.open_account bw.w.W.net ~creds:creds_c1 ~name:"carol-local" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  ignore (Ledger.mint (Accounting_server.ledger bw.bank1) ~name:"carol-local" ~currency:usd 500);
  let now = W.now bw.w in
  let check =
    Check.write ~drbg:(Sim.Net.drbg bw.w.W.net) ~now ~expires:(now + (24 * W.hour))
      ~payor:bw.carol ~payor_key:bw.carol_rsa
      ~account:(Accounting_server.account bw.bank1 "carol-local") ~payee:bw.shop ~currency:usd
      ~amount:50 ()
  in
  let collects_before = Sim.Metrics.get (Sim.Net.metrics bw.w.W.net) "accounting.collects" in
  let creds = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no inter-server collect" collects_before
    (Sim.Metrics.get (Sim.Net.metrics bw.w.W.net) "accounting.collects");
  Alcotest.(check int) "paid locally" 450
    (Ledger.balance (Accounting_server.ledger bw.bank1) ~name:"carol-local" ~currency:usd)

let test_intermediary_chain () =
  (* Route bank1 -> bank3 -> bank2: one extra endorsement and collect hop
     (Fig. 5 with a longer pipeline). *)
  let bw = bank_world () in
  let b3, b3key = W.enrol bw.w "bank3" in
  let b3_rsa = Crypto.Rsa.generate (Sim.Net.drbg bw.w.W.net) ~bits:512 in
  Directory.add_public bw.w.W.dir b3 b3_rsa.Crypto.Rsa.pub;
  let bank3 =
    Result.get_ok
      (Accounting_server.create bw.w.W.net ~me:b3 ~my_key:b3key ~kdc:bw.w.W.kdc_name
         ~signing_key:b3_rsa ~lookup:bw.lookup ())
  in
  Accounting_server.install bank3;
  Accounting_server.set_route bw.bank1 ~drawee:bw.bank2_name ~next_hop:b3 ();
  let check = write_check bw ~amount:75 () in
  let creds = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok amount -> Alcotest.(check int) "cleared through intermediary" 75 amount
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "two collect hops" 2
    (Sim.Metrics.get (Sim.Net.metrics bw.w.W.net) "accounting.collects");
  let carol_b, shop_b = balances bw in
  Alcotest.(check int) "payor debited" 925 carol_b;
  Alcotest.(check int) "payee credited" 75 shop_b

let test_double_deposit_rejected () =
  let bw = bank_world () in
  let check = write_check bw ~amount:60 () in
  let creds = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "same check number deposited twice");
  let carol_b, shop_b = balances bw in
  Alcotest.(check int) "debited once" 940 carol_b;
  Alcotest.(check int) "credited once" 60 shop_b

let test_bounced_check () =
  let bw = bank_world () in
  let check = write_check bw ~amount:5000 () in
  let creds = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Error e -> Alcotest.(check bool) "mentions funds or bounce" true (e <> "")
  | Ok _ -> Alcotest.fail "overdraft check cleared");
  let carol_b, shop_b = balances bw in
  Alcotest.(check int) "payor untouched" 1000 carol_b;
  Alcotest.(check int) "payee uncredited" 0 shop_b

let test_forged_check () =
  (* Eve forges a check "from carol" signed with her own key. *)
  let bw = bank_world () in
  let eve, _ = W.enrol bw.w "eve" in
  let eve_rsa = Crypto.Rsa.generate (Sim.Net.drbg bw.w.W.net) ~bits:512 in
  Directory.add_public bw.w.W.dir eve eve_rsa.Crypto.Rsa.pub;
  let now = W.now bw.w in
  let forged =
    Check.write ~drbg:(Sim.Net.drbg bw.w.W.net) ~now ~expires:(now + W.hour) ~payor:bw.carol
      ~payor_key:eve_rsa ~account:(Accounting_server.account bw.bank2 "carol-checking")
      ~payee:bw.shop ~currency:usd ~amount:10 ()
  in
  let creds = creds_for bw bw.shop bw.bank1_name in
  match
    Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check:forged
      ~to_account:"shop-till"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "forged signature cleared"

let test_tampered_amount () =
  (* The quota restriction in the signed certificate caps the transfer: a
     tampered face value larger than the signed quota is refused. *)
  let bw = bank_world () in
  let check = write_check bw ~amount:10 () in
  let inflated = { check with Check.amount = 900 } in
  let creds = creds_for bw bw.shop bw.bank1_name in
  match
    Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check:inflated
      ~to_account:"shop-till"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inflated check cleared"

let test_stolen_check () =
  (* Eve intercepts a check payable to shop and tries to deposit it into her
     own account at bank1. *)
  let bw = bank_world () in
  let eve, _ = W.enrol bw.w "eve" in
  let eve_rsa = Crypto.Rsa.generate (Sim.Net.drbg bw.w.W.net) ~bits:512 in
  Directory.add_public bw.w.W.dir eve eve_rsa.Crypto.Rsa.pub;
  let tgt_e = W.login bw.w eve in
  let creds_e = W.credentials_for bw.w ~tgt:tgt_e bw.bank1_name in
  (match Accounting_server.open_account bw.w.W.net ~creds:creds_e ~name:"eve-stash" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let check = write_check bw ~amount:40 () in
  match
    Accounting_server.deposit bw.w.W.net ~creds:creds_e ~endorser_key:eve_rsa ~check
      ~to_account:"eve-stash"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "eve cashed a check payable to shop"

let test_expired_check () =
  let bw = bank_world () in
  let now = W.now bw.w in
  let check =
    Check.write ~drbg:(Sim.Net.drbg bw.w.W.net) ~now ~expires:(now + W.hour) ~payor:bw.carol
      ~payor_key:bw.carol_rsa ~account:(Accounting_server.account bw.bank2 "carol-checking")
      ~payee:bw.shop ~currency:usd ~amount:10 ()
  in
  Sim.Clock.advance (Sim.Net.clock bw.w.W.net) (2 * W.hour);
  let creds = creds_for bw bw.shop bw.bank1_name in
  match
    Accounting_server.deposit bw.w.W.net ~creds ~endorser_key:bw.shop_rsa ~check
      ~to_account:"shop-till"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expired check cleared"

let test_certified_check () =
  let bw = bank_world () in
  let check = write_check bw ~amount:200 () in
  let creds_c = creds_for bw bw.carol bw.bank2_name in
  let cert_proxy =
    match Accounting_server.certify bw.w.W.net ~creds:creds_c ~check with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (* The hold is visible and the available balance dropped. *)
  (match Accounting_server.balance bw.w.W.net ~creds:creds_c ~name:"carol-checking" ~currency:usd with
  | Ok (available, held) ->
      Alcotest.(check int) "available" 800 available;
      Alcotest.(check int) "held" 200 held
  | Error e -> Alcotest.fail e);
  (* The end-server (shop) verifies the certification offline. *)
  (match
     Accounting_server.verify_certification ~lookup:bw.lookup ~now:(W.now bw.w)
       ~server:bw.bank2_name ~check_number:check.Check.number cert_proxy
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A certification for a different check number does not verify. *)
  (match
     Accounting_server.verify_certification ~lookup:bw.lookup ~now:(W.now bw.w)
       ~server:bw.bank2_name ~check_number:"some-other-check" cert_proxy
   with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "certification proxy verified for the wrong check");
  (* Certifying twice, or beyond available funds, fails. *)
  (match Accounting_server.certify bw.w.W.net ~creds:creds_c ~check with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "double certification");
  let big = write_check bw ~amount:5000 () in
  (match Accounting_server.certify bw.w.W.net ~creds:creds_c ~check:big with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "certified beyond funds");
  (* The certified check clears from the hold. *)
  let creds_s = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds:creds_s ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok amount -> Alcotest.(check int) "cleared" 200 amount
  | Error e -> Alcotest.fail e);
  match Accounting_server.balance bw.w.W.net ~creds:creds_c ~name:"carol-checking" ~currency:usd with
  | Ok (available, held) ->
      Alcotest.(check int) "available after" 800 available;
      Alcotest.(check int) "hold consumed" 0 held
  | Error e -> Alcotest.fail e

let test_cashier_check () =
  let bw = bank_world () in
  let creds_c = creds_for bw bw.carol bw.bank2_name in
  let check =
    match
      Accounting_server.cashier_check bw.w.W.net ~creds:creds_c ~from_account:"carol-checking"
        ~payee:bw.shop ~currency:usd ~amount:300
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "drawn by the bank on escrow" true
    (Principal.equal check.Check.drawn_on.Principal.Account.server bw.bank2_name);
  (* Carol already paid. *)
  let carol_b, _ = balances bw in
  Alcotest.(check int) "prepaid" 700 carol_b;
  (* Shop deposits at its own bank; clears against bank2's escrow. *)
  let creds_s = creds_for bw bw.shop bw.bank1_name in
  (match
     Accounting_server.deposit bw.w.W.net ~creds:creds_s ~endorser_key:bw.shop_rsa ~check
       ~to_account:"shop-till"
   with
  | Ok amount -> Alcotest.(check int) "cleared" 300 amount
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "escrow emptied" 0
    (Ledger.balance (Accounting_server.ledger bw.bank2) ~name:Accounting_server.escrow_account
       ~currency:usd);
  Alcotest.(check int) "conservation" 1000 (grand_total bw)

(* Conservation under a random mix of operations. *)
let prop_conservation =
  QCheck.Test.make ~name:"conservation across random check traffic" ~count:5
    (QCheck.list_of_size (QCheck.Gen.int_range 1 6) (QCheck.int_range 1 120))
    (fun amounts ->
      let bw = bank_world ~seed:("conservation" ^ string_of_int (List.length amounts)) () in
      let total0 = grand_total bw in
      let creds_s = creds_for bw bw.shop bw.bank1_name in
      List.iter
        (fun amount ->
          let check = write_check bw ~amount () in
          (* Some of these may bounce once funds run out; either way the
             total must be conserved. *)
          ignore
            (Accounting_server.deposit bw.w.W.net ~creds:creds_s ~endorser_key:bw.shop_rsa
               ~check ~to_account:"shop-till"))
        amounts;
      grand_total bw = total0)

let () =
  Alcotest.run "accounting"
    [ ( "ledger",
        [ ("basics", `Quick, test_ledger_basics);
          ("transfer and total", `Quick, test_ledger_transfer_and_total);
          ("holds", `Quick, test_ledger_holds);
          ("overflow refused", `Quick, test_ledger_overflow);
          ("held sum saturates", `Quick, test_ledger_held_saturates);
          ("release-hold compensates", `Quick, test_ledger_release_hold_compensates) ] );
      ( "rpc",
        [ ("accounts, balances, transfers", `Slow, test_rpc_accounts) ] );
      ( "checks",
        [ ("cross-bank clearing (Fig 5)", `Slow, test_cross_bank_check);
          ("same-bank clearing", `Slow, test_same_bank_check);
          ("intermediary chain", `Slow, test_intermediary_chain);
          ("double deposit rejected", `Slow, test_double_deposit_rejected);
          ("bounced check", `Slow, test_bounced_check);
          ("forged check", `Slow, test_forged_check);
          ("tampered amount", `Slow, test_tampered_amount);
          ("stolen check", `Slow, test_stolen_check);
          ("expired check", `Slow, test_expired_check) ] );
      ( "certified+cashier",
        [ ("certified check", `Slow, test_certified_check);
          ("cashier's check", `Slow, test_cashier_check) ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_conservation ]) ]
