(* Regression pins for the bench-output JSON validator, in particular the
   \u escape parser that used to walk past the end of the buffer (or accept
   junk) on truncated and non-hex escapes. *)

let ok name s =
  match Benchout.valid_json s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: rejected valid json: %s" name e

let rejected name s =
  (* The bug was a crash (out-of-bounds raise); the fix must turn each of
     these into a clean Error, never an exception. *)
  match Benchout.valid_json s with
  | Ok () -> Alcotest.failf "%s: accepted malformed json" name
  | Error _ -> ()
  | exception e -> Alcotest.failf "%s: parser raised %s" name (Printexc.to_string e)

(* [u "0041"] is the six-character JSON escape for U+0041; built by
   concatenation so the backslash is unmistakably in the payload. *)
let u hex = "\\u" ^ hex
let quoted body = {|{"a": "|} ^ body ^ {|"}|}

let test_unicode_escapes_valid () =
  ok "bmp" (quoted (u "0041"));
  ok "lower hex" (quoted (u "00ff"));
  ok "upper hex" (quoted (u "ABCD"));
  ok "escape last in string" (quoted ("tail " ^ u "0041"));
  ok "mixed escapes" (quoted ("\\n\\t\\\\ \\\"done\\\" " ^ u "0012"))

let test_unicode_escapes_malformed () =
  rejected "non-hex digit" {|{"a": "\u00g1"}|};
  rejected "truncated at eof" {|{"a": "\u12|};
  rejected "underscore" {|{"a": "\u1_23"}|};
  rejected "nothing after u" {|{"a": "\u|};
  rejected "minus sign" {|{"a": "\u-123"}|};
  rejected "escape then close quote" {|{"a": "\u12"}|}

let test_corpus_files_covered () =
  (* The fuzz corpus carries the original crashing inputs; every json-*
     entry must decode and hit the same clean-Error path. *)
  let dir = "fuzz_corpus" in
  let entries =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 5 && String.sub f 0 5 = "json-" && Filename.check_suffix f ".hex")
  in
  Alcotest.(check bool) "corpus has json crashers" true (List.length entries >= 5);
  List.iter
    (fun f ->
      let ic = open_in (Filename.concat dir f) in
      let rec lines acc =
        match input_line ic with
        | line -> lines (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      let ls = lines [] in
      close_in ic;
      List.iter
        (fun hex ->
          match Mbt.Program.of_hex hex with
          | Error e -> Alcotest.failf "%s: bad hex: %s" f e
          | Ok bytes -> rejected f bytes)
        (List.filter (fun l -> String.trim l <> "") ls))
    entries

let doc rows = { Benchout.id = "t9"; title = "roundtrip"; mode = "full"; rows }

let row label ops rate =
  { Benchout.label; ints = [ ("ops", ops); ("errors", 0) ]; floats = [ ("rate", rate) ] }

let test_check_compares_ints_only () =
  let baseline = doc [ row "n=1" 10 1.5; row "n=2" 20 2.5 ] in
  (match Benchout.check ~baseline ~current:baseline with
  | Ok () -> ()
  | Error es -> Alcotest.failf "self-check failed: %s" (String.concat "; " es));
  (* Floats are physical measurements: drift must not gate. *)
  (match Benchout.check ~baseline ~current:(doc [ row "n=1" 10 9.9; row "n=2" 20 0.1 ]) with
  | Ok () -> ()
  | Error es -> Alcotest.failf "float drift gated: %s" (String.concat "; " es));
  (* Integers are logical: any shift is a regression. *)
  match Benchout.check ~baseline ~current:(doc [ row "n=1" 10 1.5; row "n=2" 21 2.5 ]) with
  | Ok () -> Alcotest.fail "integer drift passed the gate"
  | Error _ -> ()

let () =
  Alcotest.run "benchout"
    [ ( "json",
        [ ("unicode escapes accepted", `Quick, test_unicode_escapes_valid);
          ("malformed escapes rejected without raising", `Quick, test_unicode_escapes_malformed);
          ("fuzz corpus json crashers stay fixed", `Quick, test_corpus_files_covered) ] );
      ("check", [ ("ints gate, floats do not", `Quick, test_check_compares_ints_only) ]) ]
