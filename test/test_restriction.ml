(* Restriction semantics (paper Section 7) and the additive-propagation
   rules (Section 7.9). *)

module R = Restriction

let realm = "r"
let p name = Principal.make ~realm name
let alice = p "alice"
let bob = p "bob"
let carol = p "carol"
let server = p "server"
let other_server = p "other"
let gserver = p "groups"
let admins = Principal.Group.make ~server:gserver "admins"
let ops = Principal.Group.make ~server:gserver "operators"

let restriction = Alcotest.testable R.pp R.equal

let base_req = R.request ~server ~time:100 ~operation:"read" ~target:"file1" ()

let check_ok r req = Alcotest.(check bool) "passes" true (R.check r req = Ok ())
let check_fails r req = Alcotest.(check bool) "fails" true (Result.is_error (R.check r req))

let test_grantee () =
  let r = R.Grantee ([ alice; bob ], 1) in
  check_fails r base_req;
  check_ok r { base_req with R.presenters = [ alice ] };
  check_ok r { base_req with R.presenters = [ bob; carol ] };
  check_fails r { base_req with R.presenters = [ carol ] };
  (* Quorum of two: separation of privilege. *)
  let r2 = R.Grantee ([ alice; bob ], 2) in
  check_fails r2 { base_req with R.presenters = [ alice ] };
  check_ok r2 { base_req with R.presenters = [ alice; bob ] }

let test_for_use_by_group () =
  let r = R.For_use_by_group ([ admins; ops ], 1) in
  check_fails r base_req;
  check_ok r { base_req with R.groups_asserted = [ admins ] };
  let disjoint = R.For_use_by_group ([ admins; ops ], 2) in
  check_fails disjoint { base_req with R.groups_asserted = [ admins ] };
  check_ok disjoint { base_req with R.groups_asserted = [ admins; ops ] }

let test_issued_for () =
  let r = R.Issued_for [ server ] in
  check_ok r base_req;
  check_fails r { base_req with R.server = other_server }

let test_quota () =
  let r = R.Quota ("pages", 10) in
  check_ok r base_req;
  check_ok r { base_req with R.spend = Some ("pages", 10) };
  check_fails r { base_req with R.spend = Some ("pages", 11) };
  (* A different currency is not constrained by this quota. *)
  check_ok r { base_req with R.spend = Some ("cpu", 1000) }

let test_authorized () =
  let r = R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] in
  check_ok r base_req;
  check_fails r { base_req with R.operation = "write" };
  check_fails r { base_req with R.target = "file2" };
  (* Empty ops list authorizes all operations on the object. *)
  let all_ops = R.Authorized [ { R.target = "file1"; ops = [] } ] in
  check_ok all_ops { base_req with R.operation = "delete" };
  check_fails (R.Authorized []) base_req

let test_group_membership () =
  let r = R.Group_membership [ "admins" ] in
  check_ok r base_req;
  check_ok r { base_req with R.claimed_memberships = [ "admins" ] };
  check_fails r { base_req with R.claimed_memberships = [ "admins"; "wheel" ] }

let test_accept_once () =
  let r = R.Accept_once "check-42" in
  check_ok r base_req;
  check_fails r { base_req with R.accept_once_seen = (fun id -> id = "check-42") };
  check_ok r { base_req with R.accept_once_seen = (fun id -> id = "check-43") }

let test_limit_restriction () =
  let inner = R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] in
  let r = R.Limit_restriction ([ server ], [ inner ]) in
  (* Enforced on the named server... *)
  check_ok r base_req;
  check_fails r { base_req with R.operation = "write" };
  (* ...ignored elsewhere. *)
  check_ok r { base_req with R.server = other_server; R.operation = "write" }

(* --- sequence: the stateful ordered-steps restriction --- *)

let step ?server ?target op = { R.step_op = op; step_server = server; step_target = target }

let seq_req ?(progress = fun _ -> 0) ~operation ~target () =
  R.request ~server ~time:100 ~operation ~target ~sequence_progress:progress ()

let test_sequence_order () =
  let steps = [ step "open" ~target:"file1"; step "read" ~target:"file1" ] in
  let r = R.Sequence steps in
  let at k = fun _ -> k in
  (* Step 0 permits only "open" on file1. *)
  check_ok r (seq_req ~operation:"open" ~target:"file1" ());
  check_fails r (seq_req ~operation:"read" ~target:"file1" ());
  check_fails r (seq_req ~operation:"open" ~target:"file2" ());
  (* After one advance, only "read" is next; "open" is consumed. *)
  check_ok r (seq_req ~progress:(at 1) ~operation:"read" ~target:"file1" ());
  check_fails r (seq_req ~progress:(at 1) ~operation:"open" ~target:"file1" ());
  (* Exhausted: everything is denied. *)
  check_fails r (seq_req ~progress:(at 2) ~operation:"read" ~target:"file1" ());
  (* A step naming a server binds the step to it. *)
  let r2 = R.Sequence [ step "open" ~server:other_server ] in
  check_fails r2 (seq_req ~operation:"open" ~target:"file1" ());
  let r3 = R.Sequence [ step "open" ~server ] in
  check_ok r3 (seq_req ~operation:"open" ~target:"file1" ());
  (* A step with no target constraint accepts any target. *)
  let r4 = R.Sequence [ step "open" ] in
  check_ok r4 (seq_req ~operation:"open" ~target:"anything" ())

let test_sequence_degenerate_fails_closed () =
  (* Empty and duplicate-step sequences are unusable however they arise. *)
  check_fails (R.Sequence []) (seq_req ~operation:"open" ~target:"file1" ());
  let s = step "open" ~target:"file1" in
  check_fails (R.Sequence [ s; s ]) (seq_req ~operation:"open" ~target:"file1" ())

let test_sequence_wire_form_pinned () =
  (* The exact wire form, pinned: a pre-sequence verifier sees the head tag
     [S "sequence"], does not recognize it, decodes the whole value as
     [Unknown "sequence"] — and [check] fails that closed.  A proxy carrying
     a sequence is therefore unusable at servers that predate the tag, never
     silently stateless. *)
  let steps = [ step "open" ~server ~target:"file1"; step "read" ] in
  let expected =
    Wire.L
      [ Wire.S "sequence";
        Wire.L
          [ Wire.L
              [ Wire.S "open"; Wire.L [ Principal.to_wire server ];
                Wire.L [ Wire.S "file1" ] ];
            Wire.L [ Wire.S "read"; Wire.L []; Wire.L [] ] ] ]
  in
  Alcotest.(check bool) "pinned encoding" true
    (Wire.equal (R.to_wire (R.Sequence steps)) expected);
  (* Round-trips for a current verifier... *)
  (match R.of_wire expected with
  | Ok r -> Alcotest.check restriction "roundtrip" (R.Sequence steps) r
  | Error e -> Alcotest.fail e);
  (* ...and fails closed for a pre-sequence one, which maps the unrecognized
     head tag to [Unknown] exactly as test_unknown_wire_form pins. *)
  check_fails (R.Unknown "sequence") (seq_req ~operation:"open" ~target:"file1" ())

let test_sequence_wire_rejects_degenerate () =
  (* The decoder refuses what the checker would refuse: fail closed at both
     layers. *)
  Alcotest.(check bool) "empty" true
    (Result.is_error (R.of_wire (Wire.L [ Wire.S "sequence"; Wire.L [] ])));
  let s = step "open" ~target:"file1" in
  Alcotest.(check bool) "duplicate step" true
    (Result.is_error (R.of_wire (R.to_wire (R.Sequence [ s; s ]))));
  Alcotest.(check bool) "malformed step" true
    (Result.is_error
       (R.of_wire (Wire.L [ Wire.S "sequence"; Wire.L [ Wire.I 3 ] ])))

let test_tighten_sequence () =
  let steps = [ step "a"; step "b"; step "c" ] in
  Alcotest.(check int) "keep 2" 2 (List.length (R.tighten_sequence ~keep:2 steps));
  (* Clamped: a delegate can neither extend nor empty the sequence. *)
  Alcotest.(check int) "keep 9 clamps" 3 (List.length (R.tighten_sequence ~keep:9 steps));
  Alcotest.(check int) "keep 0 clamps" 1 (List.length (R.tighten_sequence ~keep:0 steps));
  Alcotest.(check bool) "prefix" true
    (List.for_all2 R.seq_step_equal (R.tighten_sequence ~keep:2 steps)
       [ step "a"; step "b" ])

let test_unknown_fails_closed () =
  check_fails (R.Unknown "hologram") base_req;
  (* An unknown restriction arriving off the wire must also fail. *)
  match R.of_wire (Wire.L [ Wire.S "hologram"; Wire.I 3 ]) with
  | Ok r -> check_fails r base_req
  | Error e -> Alcotest.fail e

let test_check_all () =
  let rs = [ R.Issued_for [ server ]; R.Quota ("pages", 5) ] in
  Alcotest.(check bool) "all pass" true (R.check_all rs base_req = Ok ());
  Alcotest.(check bool) "one fails" true
    (Result.is_error (R.check_all rs { base_req with R.spend = Some ("pages", 6) }));
  Alcotest.(check bool) "empty list passes" true (R.check_all [] base_req = Ok ())

let all_restrictions =
  [ R.Grantee ([ alice; bob ], 2);
    R.For_use_by_group ([ admins ], 1);
    R.Issued_for [ server; other_server ];
    R.Quota ("dollars", 100);
    R.Authorized [ { R.target = "obj"; ops = [ "read"; "write" ] }; { R.target = "x"; ops = [] } ];
    R.Group_membership [ "a"; "b" ];
    R.Accept_once "id-1";
    R.Limit_restriction ([ server ], [ R.Quota ("cpu", 1) ]);
    R.Sequence
      [ { R.step_op = "open"; step_server = Some server; step_target = Some "obj" };
        { R.step_op = "read"; step_server = None; step_target = None } ];
    R.Unknown "mystery" ]

let test_unknown_wire_form () =
  (* The forward-compatibility contract, pinned: an unrecognized tag decodes
     to [Unknown tag] (never an error, never a crash), and [Unknown tag]
     encodes as [L [S tag]] — so a relay built today forwards restriction
     types invented tomorrow, while every checker fails them closed. *)
  Alcotest.(check bool) "pinned encoding" true
    (Wire.equal (R.to_wire (R.Unknown "x-future")) (Wire.L [ Wire.S "x-future" ]));
  (match R.of_wire (Wire.L [ Wire.S "x-future"; Wire.I 9; Wire.S "payload" ]) with
  | Ok (R.Unknown "x-future") -> ()
  | Ok r -> Alcotest.failf "decoded to %a" R.pp r
  | Error e -> Alcotest.fail e);
  match R.of_wire (R.to_wire (R.Unknown "x-future")) with
  | Ok (R.Unknown "x-future") -> ()
  | Ok r -> Alcotest.failf "roundtripped to %a" R.pp r
  | Error e -> Alcotest.fail e

let test_wire_roundtrip () =
  List.iter
    (fun r ->
      match R.of_wire (R.to_wire r) with
      | Ok r' -> Alcotest.check restriction "roundtrip" r r'
      | Error e -> Alcotest.fail e)
    all_restrictions;
  match R.list_of_wire (R.list_to_wire all_restrictions) with
  | Ok rs -> Alcotest.(check int) "list roundtrip" (List.length all_restrictions) (List.length rs)
  | Error e -> Alcotest.fail e

let test_wire_rejects_garbage () =
  Alcotest.(check bool) "int" true (Result.is_error (R.of_wire (Wire.I 3)));
  Alcotest.(check bool) "bad quorum" true
    (Result.is_error (R.of_wire (Wire.L [ Wire.S "grantee"; Wire.L []; Wire.I 0 ])));
  Alcotest.(check bool) "negative quota" true
    (Result.is_error (R.of_wire (Wire.L [ Wire.S "quota"; Wire.S "c"; Wire.I (-1) ])))

let test_propagate_keeps_everything () =
  let rs = [ R.Quota ("pages", 5); R.Accept_once "x" ] in
  let out = R.propagate ~issued_for:[ server ] rs in
  Alcotest.(check int) "issued-for prepended" (List.length rs + 1) (List.length out);
  (match out with
  | R.Issued_for [ s ] :: rest ->
      Alcotest.(check bool) "server" true (Principal.equal s server);
      Alcotest.(check bool) "rest preserved" true (List.for_all2 R.equal rest rs)
  | _ -> Alcotest.fail "expected Issued_for head")

let test_propagate_elides_unreachable_limit () =
  let limited = R.Limit_restriction ([ other_server ], [ R.Quota ("cpu", 1) ]) in
  let out = R.propagate ~issued_for:[ server ] [ limited; R.Quota ("pages", 5) ] in
  Alcotest.(check bool) "limit elided" true
    (not (List.exists (function R.Limit_restriction _ -> true | _ -> false) out));
  (* But kept when the derived proxy can reach the limited server. *)
  let out2 = R.propagate ~issued_for:[ other_server ] [ limited ] in
  Alcotest.(check bool) "limit kept" true
    (List.exists (function R.Limit_restriction _ -> true | _ -> false) out2)

let test_propagate_empty_raises () =
  Alcotest.(check_raises "empty"
      (Invalid_argument "Restriction.propagate: issued_for must be non-empty") (fun () ->
        ignore (R.propagate ~issued_for:[] [])))

(* --- properties --- *)

let gen_principal =
  QCheck.Gen.(map (fun i -> p (Printf.sprintf "p%d" i)) (int_bound 20))

let gen_restriction =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ map2 (fun ps q -> R.Grantee (ps, 1 + q))
                (list_size (int_range 1 3) gen_principal) (int_bound 2);
              map (fun ss -> R.Issued_for ss) (list_size (int_range 1 3) gen_principal);
              map2 (fun c v -> R.Quota (c, v)) (oneofl [ "usd"; "pages"; "cpu" ]) (int_bound 1000);
              map (fun id -> R.Accept_once id) string_small;
              map (fun gs -> R.Group_membership gs) (list_size (int_bound 3) string_small);
              map
                (fun ts -> R.Authorized (List.map (fun t -> { R.target = t; ops = [] }) ts))
                (list_size (int_bound 3) string_small);
              (* Steps distinct by construction: the generator never emits
                 the degenerate forms the decoder refuses. *)
              map
                (fun n -> R.Sequence (List.init (1 + n) (fun i -> step (Printf.sprintf "s%d" i))))
                (int_bound 2) ]
        in
        if n <= 0 then leaf
        else
          frequency
            [ (4, leaf);
              ( 1,
                map2
                  (fun ss rs -> R.Limit_restriction (ss, rs))
                  (list_size (int_range 1 2) gen_principal)
                  (list_size (int_bound 2) (self (n / 2))) ) ]))

let arb_restriction = QCheck.make ~print:(Format.asprintf "%a" R.pp) gen_restriction

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"restriction wire roundtrip" ~count:300 arb_restriction (fun r ->
      match R.of_wire (R.to_wire r) with Ok r' -> R.equal r r' | Error _ -> false)

let prop_check_total =
  QCheck.Test.make ~name:"check never raises" ~count:300 arb_restriction (fun r ->
      match R.check r base_req with Ok () | Error _ -> true)

let prop_propagate_monotone =
  QCheck.Test.make ~name:"propagate never invents permissions" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_bound 5) arb_restriction) (fun rs ->
      let out = R.propagate ~issued_for:[ server ] rs in
      (* Every propagated restriction other than the new Issued_for was in
         the input: propagation can only drop (unreachable limits), never
         add or alter. *)
      List.for_all
        (fun r ->
          match r with
          | R.Issued_for [ s ] when Principal.equal s server -> true
          | _ -> List.exists (R.equal r) rs)
        out)

(* Tightening is additive-only: however a delegate chains tighten_sequence
   calls, the result is a non-empty prefix of the original — never reordered,
   never extended, never widened back after a narrowing. *)
let prop_tighten_prefix =
  QCheck.Test.make ~name:"sequence tightening stays a prefix" ~count:300
    QCheck.(pair (int_range 1 5) (list_of_size (QCheck.Gen.int_bound 6) (int_range (-3) 9)))
    (fun (n, keeps) ->
      let steps = List.init n (fun i -> step (Printf.sprintf "s%d" i)) in
      let final = List.fold_left (fun acc k -> R.tighten_sequence ~keep:k acc) steps keeps in
      let m = List.length final in
      m >= 1 && m <= n
      && List.for_all2 R.seq_step_equal final (R.tighten_sequence ~keep:m steps))

(* Progress is prefix-monotone: drive a random interleaving of step attempts
   (including out-of-order and repeated ones) through check + advance; the
   granted operations are always exactly the in-order prefix of the
   sequence, and every out-of-turn attempt is denied. *)
let prop_progress_prefix_monotone =
  QCheck.Test.make ~name:"sequence progress is prefix-monotone" ~count:300
    QCheck.(pair (int_range 1 4) (list_of_size (QCheck.Gen.int_range 1 12) (int_bound 5)))
    (fun (n, attempts) ->
      let steps = List.init n (fun i -> step (Printf.sprintf "s%d" i)) in
      let r = R.Sequence steps in
      let progress = ref 0 in
      let granted = ref [] in
      List.iter
        (fun a ->
          let operation = Printf.sprintf "s%d" a in
          let req = seq_req ~progress:(fun _ -> !progress) ~operation ~target:"t" () in
          match R.check r req with
          | Ok () ->
              granted := !granted @ [ operation ];
              incr progress
          | Error _ -> ())
        attempts;
      let k = List.length !granted in
      k <= n && !granted = List.init k (fun i -> Printf.sprintf "s%d" i))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_wire_roundtrip; prop_check_total; prop_propagate_monotone; prop_tighten_prefix;
      prop_progress_prefix_monotone ]

(* --- combination matrix: limit-restriction wrapping each type, quorum
   edges, unsatisfiable forms --- *)

let test_limit_wraps_each_type () =
  (* Every restriction type behaves identically inside a limit-restriction
     scoped to the evaluating server, and is ignored when scoped away. *)
  let wrapped r = R.Limit_restriction ([ server ], [ r ]) in
  let away r = R.Limit_restriction ([ other_server ], [ r ]) in
  let failing_reqs =
    [ (R.Grantee ([ alice ], 1), base_req);
      (R.For_use_by_group ([ admins ], 1), base_req);
      (R.Issued_for [ other_server ], base_req);
      (R.Quota ("pages", 1), { base_req with R.spend = Some ("pages", 2) });
      (R.Authorized [ { R.target = "other"; ops = [] } ], base_req);
      (R.Group_membership [ "a" ], { base_req with R.claimed_memberships = [ "b" ] });
      (R.Accept_once "id", { base_req with R.accept_once_seen = (fun _ -> true) });
      (R.Unknown "x", base_req) ]
  in
  List.iter
    (fun (r, req) ->
      check_fails (wrapped r) req;
      check_ok (away r) req)
    failing_reqs

let test_nested_limit () =
  (* limit(server, [limit(other, [unknown])]) — the inner limit is scoped
     away, so the whole thing passes; flip the scopes and it fails. *)
  let inner_away = R.Limit_restriction ([ server ], [ R.Limit_restriction ([ other_server ], [ R.Unknown "x" ]) ]) in
  check_ok inner_away base_req;
  let inner_here = R.Limit_restriction ([ server ], [ R.Limit_restriction ([ server ], [ R.Unknown "x" ]) ]) in
  check_fails inner_here base_req

let test_quorum_edges () =
  (* A quorum larger than the list is unsatisfiable. *)
  check_fails (R.Grantee ([ alice ], 2)) { base_req with R.presenters = [ alice ] };
  check_fails (R.For_use_by_group ([ admins ], 2)) { base_req with R.groups_asserted = [ admins ] };
  (* Duplicate presenters do not double-count toward the quorum. *)
  check_fails
    (R.Grantee ([ alice; bob ], 2))
    { base_req with R.presenters = [ alice; alice ] }

let test_unsatisfiable_forms () =
  (* Empty lists are deny-all, not allow-all. *)
  check_fails (R.Grantee ([], 1)) { base_req with R.presenters = [ alice ] };
  check_fails (R.Issued_for []) base_req;
  check_fails (R.Authorized []) base_req;
  (* An empty group-membership restriction forbids asserting anything. *)
  check_fails (R.Group_membership []) { base_req with R.claimed_memberships = [ "a" ] };
  check_ok (R.Group_membership []) base_req

let () =
  Alcotest.run "restriction"
    [ ( "check",
        [ ("grantee", `Quick, test_grantee);
          ("for-use-by-group", `Quick, test_for_use_by_group);
          ("issued-for", `Quick, test_issued_for);
          ("quota", `Quick, test_quota);
          ("authorized", `Quick, test_authorized);
          ("group-membership", `Quick, test_group_membership);
          ("accept-once", `Quick, test_accept_once);
          ("limit-restriction", `Quick, test_limit_restriction);
          ("sequence order", `Quick, test_sequence_order);
          ("sequence degenerate fails closed", `Quick, test_sequence_degenerate_fails_closed);
          ("tighten sequence", `Quick, test_tighten_sequence);
          ("unknown fails closed", `Quick, test_unknown_fails_closed);
          ("check_all", `Quick, test_check_all);
          ("limit wraps each type", `Quick, test_limit_wraps_each_type);
          ("nested limit", `Quick, test_nested_limit);
          ("quorum edges", `Quick, test_quorum_edges);
          ("unsatisfiable forms", `Quick, test_unsatisfiable_forms) ] );
      ( "wire",
        [ ("roundtrip", `Quick, test_wire_roundtrip);
          ("unknown tag pinned", `Quick, test_unknown_wire_form);
          ("sequence form pinned, pre-tag fails closed", `Quick, test_sequence_wire_form_pinned);
          ("sequence rejects degenerate", `Quick, test_sequence_wire_rejects_degenerate);
          ("rejects garbage", `Quick, test_wire_rejects_garbage) ] );
      ( "propagate",
        [ ("keeps everything", `Quick, test_propagate_keeps_everything);
          ("elides unreachable limits", `Quick, test_propagate_elides_unreachable_limit);
          ("empty raises", `Quick, test_propagate_empty_raises) ] );
      ("properties", props) ]
