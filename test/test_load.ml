(* The open-loop load harness: the population generator's determinism and
   key-pool economy, the driver's byte-identical same-seed replay with the
   batched hot path on and off, the cascade study's exact RSA accounting,
   and RPC pipelining's exactly-once semantics under retransmission. *)

module Population = Load.Population
module Driver = Load.Driver
module Net = Sim.Net

(* --- Zipf popularity --- *)

let test_zipf_deterministic () =
  let z = Population.zipf 100_000 in
  Alcotest.(check int) "size" 100_000 (Population.zipf_size z);
  let draw () =
    let drbg = Crypto.Drbg.create ~seed:"zipf-det" in
    List.init 500 (fun _ -> Population.zipf_sample z drbg)
  in
  let a = draw () and b = draw () in
  Alcotest.(check (list int)) "same seed, same ranks" a b;
  List.iter
    (fun r ->
      if r < 0 || r >= 100_000 then Alcotest.failf "rank %d outside the universe" r)
    a

let test_zipf_head_heavy () =
  let z = Population.zipf 10_000 in
  let drbg = Crypto.Drbg.create ~seed:"zipf-skew" in
  let hits = Hashtbl.create 64 in
  for _ = 1 to 4_000 do
    let r = Population.zipf_sample z drbg in
    Hashtbl.replace hits r (1 + Option.value ~default:0 (Hashtbl.find_opt hits r))
  done;
  let count r = Option.value ~default:0 (Hashtbl.find_opt hits r) in
  (* Rank 0 carries weight 1/1 of a harmonic total ~ln(10^4) ~ 9.8, so
     ~10% of draws; any single cold rank carries ~1/r of that. *)
  Alcotest.(check bool) "rank 0 is hot" true (count 0 > 200);
  Alcotest.(check bool) "rank 0 beats rank 100" true (count 0 > count 100);
  Alcotest.(check bool) "rejects empty universe" true
    (try ignore (Population.zipf 0); false with Invalid_argument _ -> true)

(* --- Pooled RSA keys --- *)

let test_pool_never_aliases_live_keys () =
  let pool = Population.pool ~seed:"pool-alias" () in
  let keys = List.init 5 (fun _ -> Population.acquire pool) in
  List.iteri
    (fun i ki ->
      List.iteri
        (fun j kj -> if i < j && ki == kj then Alcotest.failf "keys %d and %d alias" i j)
        keys)
    keys;
  Alcotest.(check int) "five keygens" 5 (Population.pool_generated pool);
  Alcotest.(check int) "five live" 5 (Population.pool_live pool);
  (* Release one; the next acquire must reuse exactly it, and the reuse
     must not cost a keygen. *)
  let k0 = List.hd keys in
  Population.release pool k0;
  Alcotest.(check int) "one free" 1 (Population.pool_free pool);
  let k0' = Population.acquire pool in
  Alcotest.(check bool) "released key is reused" true (k0 == k0');
  Alcotest.(check int) "reuse costs no keygen" 5 (Population.pool_generated pool)

let test_pool_double_release_raises () =
  let pool = Population.pool ~seed:"pool-double" () in
  let k = Population.acquire pool in
  Population.release pool k;
  Alcotest.(check bool) "double release refused" true
    (try Population.release pool k; false with Invalid_argument _ -> true);
  (* The refusal left the free list intact: one entry, reusable once. *)
  Alcotest.(check int) "still one free" 1 (Population.pool_free pool);
  ignore (Population.acquire pool);
  Alcotest.(check int) "no extra keygen" 1 (Population.pool_generated pool)

(* --- Arrival schedule --- *)

let test_arrivals_match_rate () =
  (* 1000/s for 100ms: exactly 100 arrivals, evenly spaced 1000us apart. *)
  let offs = Population.arrivals [ { Population.rate_per_s = 1000; duration_us = 100_000 } ] in
  Alcotest.(check int) "count = rate * duration" 100 (List.length offs);
  List.iteri (fun i t -> Alcotest.(check int) "evenly spaced" (i * 1000) t) offs;
  (* Phases abut and the combined schedule stays ascending; each phase
     contributes duration/step arrivals (within one slot of rate*duration). *)
  let profile =
    [ { Population.rate_per_s = 200; duration_us = 50_000 };
      { Population.rate_per_s = 800; duration_us = 25_000 } ]
  in
  let offs = Population.arrivals profile in
  Alcotest.(check int) "burst profile count" (10 + 20) (List.length offs);
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "strictly ascending" true (ascending offs);
  Alcotest.(check bool) "burst phase starts where the first ends" true
    (List.exists (fun t -> t = 50_000) offs);
  Alcotest.(check bool) "rejects zero rate" true
    (try
       ignore (Population.arrivals [ { Population.rate_per_s = 0; duration_us = 1 } ]);
       false
     with Invalid_argument _ -> true)

(* --- The cascade study: exact RSA accounting --- *)

let test_cascade_exact_rsa_accounting () =
  let c = Driver.cascade_study ~seed:"test-cascade" () in
  (* depth-8 prefix shared by 16 holders, presented 3 times each. *)
  Alcotest.(check int) "uncached: (depth+1)*M*repeats" 432 c.Driver.c_rsa_uncached;
  Alcotest.(check int) "whole-chain memo: (depth+1)*M" 144 c.Driver.c_rsa_whole_chain;
  Alcotest.(check int) "per-signature: depth+M" 24 c.Driver.c_rsa_per_signature;
  Alcotest.(check int) "link cache hits the same floor" 24 c.Driver.c_rsa_link;
  Alcotest.(check bool) "link beats whole-chain memoization" true
    (c.Driver.c_rsa_link < c.Driver.c_rsa_whole_chain);
  (* First holder misses once; its recorded prefix then serves every other
     holder's shared prefix and every re-presentation. *)
  Alcotest.(check int) "one cold miss" 1 c.Driver.c_link_misses;
  Alcotest.(check int) "47 prefix hits" 47 c.Driver.c_link_hits

let test_cascade_scales_with_shape () =
  let c = Driver.cascade_study ~depth:4 ~holders:3 ~repeats:2 ~seed:"test-cascade-small" () in
  Alcotest.(check int) "uncached 5*3*2" 30 c.Driver.c_rsa_uncached;
  Alcotest.(check int) "whole-chain 5*3" 15 c.Driver.c_rsa_whole_chain;
  Alcotest.(check int) "per-signature 4+3" 7 c.Driver.c_rsa_per_signature;
  Alcotest.(check int) "link 4+3" 7 c.Driver.c_rsa_link

(* --- The driver: small end-to-end runs --- *)

let small cfg_seed ~batched =
  {
    Driver.default with
    Driver.seed = cfg_seed;
    population = 2_000;
    objects = 64;
    shards = 2;
    phases = [ { Population.rate_per_s = 400; duration_us = 100_000 } ];
    link_cache = batched;
    pipeline = batched;
    churn_every = 8;
  }

let metric o k = Option.value (List.assoc_opt k o.Driver.metrics) ~default:0

let test_driver_deterministic_replay () =
  let cfg = small "driver-det" ~batched:true in
  let o = Driver.run cfg and o2 = Driver.run cfg in
  Alcotest.(check bool) "some arrivals succeed" true (o.Driver.succeeded > 0);
  Alcotest.(check bool) "metrics replay byte-identical" true (o.Driver.metrics = o2.Driver.metrics);
  Alcotest.(check bool) "trace replays byte-identical" true (o.Driver.trace = o2.Driver.trace);
  Alcotest.(check bool) "span JSONL replays byte-identical" true (o.Driver.jsonl = o2.Driver.jsonl);
  (* The batched hot path engaged. *)
  Alcotest.(check bool) "sweeps coalesced" true (metric o "rpc.batch.calls" > 0);
  Alcotest.(check bool) "replication read-skips" true (metric o "cluster.repl_read_skips" > 0);
  (* Churn exercised the pool economy: some materializations were served
     from the free list, and keygens never exceed materializations. *)
  Alcotest.(check bool) "keys reused" true (o.Driver.keys_reused > 0);
  Alcotest.(check bool) "keygens bounded" true
    (o.Driver.keys_generated <= o.Driver.materializations)

let test_driver_unbatched_path () =
  let cfg = small "driver-unbatched" ~batched:false in
  let o = Driver.run cfg in
  Alcotest.(check bool) "still makes progress" true (o.Driver.succeeded > 0);
  Alcotest.(check int) "no link cache" 0 (metric o "link_cache.hits");
  Alcotest.(check int) "no batches" 0 (metric o "rpc.batch.calls");
  Alcotest.(check bool) "sweeps still ran, serially" true (o.Driver.sweeps > 0)

(* --- RPC pipelining: exactly-once under retransmission --- *)

let test_call_batch_exactly_once () =
  let w = World.create ~seed:"batch-rpc" () in
  let echo, echo_key = World.enrol w "echo" in
  let executions = ref 0 in
  Secure_rpc.serve w.World.net ~me:echo ~my_key:echo_key (fun _ctx payload ->
      incr executions;
      Ok (Wire.L [ Wire.S "echoed"; payload ]));
  let alice, _ = World.enrol w "alice" in
  let tgt = World.login w alice in
  let creds = World.credentials_for w ~tgt echo in
  let payloads = List.init 4 (fun i -> Wire.I i) in
  (* Drop the first request on the wire: the client must retransmit the
     same bytes, and the batch handler must still run each item once. *)
  let dropped = ref false in
  Net.set_tap w.World.net (fun ~dir ~src:_ ~dst _payload ->
      if dir = `Request && Principal.to_string echo = dst && not !dropped then begin
        dropped := true;
        Net.Drop
      end
      else Net.Deliver);
  let r =
    Secure_rpc.call_batch w.World.net ~creds ~retries:4 ~timeout_us:10_000 payloads
  in
  Net.clear_tap w.World.net;
  Alcotest.(check bool) "request was dropped once" true !dropped;
  (match r with
  | Error e -> Alcotest.failf "batch failed: %s" e
  | Ok items ->
      Alcotest.(check int) "positional replies" 4 (List.length items);
      List.iteri
        (fun i item ->
          match item with
          | Ok (Wire.L [ Wire.S "echoed"; Wire.I j ]) ->
              Alcotest.(check int) "reply matches payload position" i j
          | Ok _ -> Alcotest.fail "malformed echo"
          | Error e -> Alcotest.failf "item %d failed: %s" i e)
        items);
  Alcotest.(check int) "each item executed exactly once" 4 !executions;
  (* A verbatim replay of the whole exchange is served from the response
     cache: same reply, zero additional handler executions. *)
  let r2 =
    Secure_rpc.call_batch w.World.net ~creds ~retries:4 ~timeout_us:10_000 payloads
  in
  Alcotest.(check bool) "second batch round succeeds" true (Result.is_ok r2);
  Alcotest.(check int) "fresh authenticator, fresh execution" 8 !executions;
  Alcotest.(check int) "one item per payload, both rounds"
    8 (Sim.Metrics.get (Net.metrics w.World.net) "rpc.batch.items")

let test_call_batch_empty_is_free () =
  let w = World.create ~seed:"batch-empty" () in
  let echo, echo_key = World.enrol w "echo" in
  Secure_rpc.serve w.World.net ~me:echo ~my_key:echo_key (fun _ctx _ ->
      Alcotest.fail "handler ran for an empty batch");
  let alice, _ = World.enrol w "alice" in
  let tgt = World.login w alice in
  let creds = World.credentials_for w ~tgt echo in
  let before = Sim.Metrics.get (Net.metrics w.World.net) "net.messages" in
  (match Secure_rpc.call_batch w.World.net ~creds [] with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty batch returned items"
  | Error e -> Alcotest.failf "empty batch failed: %s" e);
  Alcotest.(check int) "no messages sent"
    before
    (Sim.Metrics.get (Net.metrics w.World.net) "net.messages")

let () =
  Alcotest.run "load"
    [
      ( "population",
        [
          Alcotest.test_case "zipf: same seed, same draw sequence" `Quick test_zipf_deterministic;
          Alcotest.test_case "zipf: head-heavy popularity" `Quick test_zipf_head_heavy;
          Alcotest.test_case "pool: live keys never alias" `Quick test_pool_never_aliases_live_keys;
          Alcotest.test_case "pool: double release refused" `Quick test_pool_double_release_raises;
          Alcotest.test_case "arrivals: rate profile expanded exactly" `Quick
            test_arrivals_match_rate;
        ] );
      ( "cascade study",
        [
          Alcotest.test_case "exact RSA accounting at default shape" `Quick
            test_cascade_exact_rsa_accounting;
          Alcotest.test_case "accounting scales with depth/holders/repeats" `Quick
            test_cascade_scales_with_shape;
        ] );
      ( "driver",
        [
          Alcotest.test_case "same-seed replay is byte-identical" `Slow
            test_driver_deterministic_replay;
          Alcotest.test_case "unbatched path: no link hits, no batches" `Slow
            test_driver_unbatched_path;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "exactly-once under a dropped request" `Quick
            test_call_batch_exactly_once;
          Alcotest.test_case "empty batch never touches the network" `Quick
            test_call_batch_empty_is_free;
        ] );
    ]
