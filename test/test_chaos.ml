(* Chaos: the accounting world under deterministic fault injection.

   A seeded fault-plan matrix (drop + duplicate + jitter + drawee crash)
   runs the two-bank marketplace workload; whatever the environment does,
   value must be conserved across every ledger, no check number may clear
   twice, and the whole run must replay bit-for-bit from its seed. Plus
   the targeted version of the core hazard: a response lost after the
   handler ran, resolved by retransmission hitting the server's response
   cache. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- the seeded chaos matrix --- *)

let matrix_configs =
  [
    ("calm", { Chaos.default with seed = "chaos-calm"; drop = 0.05; duplicate = 0.05; crash_drawee = false });
    ("default", { Chaos.default with seed = "chaos-default" });
    ("stormy", { Chaos.default with seed = "chaos-stormy"; drop = 0.25; duplicate = 0.15 });
  ]

let test_matrix () =
  List.iter
    (fun (label, cfg) ->
      let o = Chaos.run cfg in
      (match o.Chaos.conserved with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" label e);
      check_int (label ^ ": no double redemptions") 0 o.Chaos.double_redemptions;
      check (label ^ ": some operations succeed") true (o.Chaos.succeeded > 0);
      check (label ^ ": faults actually fired") true (o.Chaos.faults_dropped > 0);
      check
        (label ^ ": duplicates absorbed or none injected")
        true
        (o.Chaos.faults_duplicated = 0 || o.Chaos.dedups >= 0);
      check (label ^ ": retries happened") true (o.Chaos.retries_used > 0))
    matrix_configs

(* Same seed, same everything: metrics and audit trail included. *)
let test_determinism () =
  let a = Chaos.run Chaos.default and b = Chaos.run Chaos.default in
  check_int "succeeded" a.Chaos.succeeded b.Chaos.succeeded;
  check_int "retries" a.Chaos.retries_used b.Chaos.retries_used;
  check_int "dedups" a.Chaos.dedups b.Chaos.dedups;
  Alcotest.(check (list (pair string int))) "redemptions" a.Chaos.redemptions b.Chaos.redemptions;
  Alcotest.(check (list (pair string int))) "metrics" a.Chaos.metrics b.Chaos.metrics;
  Alcotest.(check (list string)) "trace" a.Chaos.trace b.Chaos.trace

(* And different seeds genuinely explore different schedules. *)
let test_seed_sensitivity () =
  let a = Chaos.run Chaos.default
  and b = Chaos.run { Chaos.default with seed = "chaos-other" } in
  check "different seeds, different runs" true (a.Chaos.metrics <> b.Chaos.metrics)

(* --- the core hazard, in isolation ---

   The handler runs, then the response is lost. Without retries the client
   is stuck: retrying naively would normally re-run the handler (double
   debit); not retrying loses the answer. With retries, the retransmission
   carries the SAME authenticator, the server's response cache answers it,
   and the handler still ran exactly once. *)

let test_lost_response_exactly_once () =
  let w = World.create ~seed:"lost-response" () in
  let server, server_key = World.enrol w "counter-server" in
  let client, _ = World.enrol w "client" in
  let handler_runs = ref 0 in
  Secure_rpc.serve w.World.net ~me:server ~my_key:server_key (fun _ctx payload ->
      incr handler_runs;
      Ok payload);
  let tgt = World.login w client in
  let creds = World.credentials_for w ~tgt server in
  (* Lose exactly the first response after the handler has run. *)
  let dropped = ref false in
  Sim.Net.set_tap w.World.net (fun ~dir ~src:_ ~dst:_ _payload ->
      match dir with
      | `Response when not !dropped ->
          dropped := true;
          Sim.Net.Drop
      | _ -> Sim.Net.Deliver);
  (match Secure_rpc.call w.World.net ~creds ~retries:2 (Wire.S "ping") with
  | Ok (Wire.S "ping") -> ()
  | Ok _ -> Alcotest.fail "wrong echo"
  | Error e -> Alcotest.failf "call failed: %s" e);
  check "the response really was lost once" true !dropped;
  check_int "handler ran exactly once" 1 !handler_runs;
  check_int "retransmission served from the response cache" 1
    (Sim.Metrics.get (Sim.Net.metrics w.World.net) "rpc.dedup")

(* Without a retry budget the same loss is a hard failure — the hazard the
   cache+retry combination exists to fix. *)
let test_lost_response_without_retries () =
  let w = World.create ~seed:"lost-response-bare" () in
  let server, server_key = World.enrol w "counter-server" in
  let client, _ = World.enrol w "client" in
  let handler_runs = ref 0 in
  Secure_rpc.serve w.World.net ~me:server ~my_key:server_key (fun _ctx payload ->
      incr handler_runs;
      Ok payload);
  let tgt = World.login w client in
  let creds = World.credentials_for w ~tgt server in
  Sim.Net.set_tap w.World.net (fun ~dir ~src:_ ~dst:_ _payload ->
      match dir with `Response -> Sim.Net.Drop | _ -> Sim.Net.Deliver);
  (match Secure_rpc.call w.World.net ~creds (Wire.S "ping") with
  | Ok _ -> Alcotest.fail "should have failed"
  | Error e -> check "transient error" true (Sim.Net.transient_error e));
  check_int "handler ran anyway — the side effect happened" 1 !handler_runs

(* --- replay cache boundary: an entry is dead at exactly its expiry --- *)

let test_replay_cache_boundary () =
  let rc = Replay_cache.create () in
  (match Replay_cache.record rc ~now:0 ~expires:10 "check-1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check "live strictly before expiry" true (Replay_cache.seen rc ~now:9 "check-1");
  check "dead at exactly expires = now" false (Replay_cache.seen rc ~now:10 "check-1");
  (* And once expired, the number can be recorded again. *)
  (match Replay_cache.record rc ~now:10 ~expires:20 "check-1" with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("re-record after expiry: " ^ e));
  check "live again" true (Replay_cache.seen rc ~now:15 "check-1")

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "seeded fault matrix conserves value" `Quick test_matrix;
          Alcotest.test_case "bit-for-bit determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        ] );
      ( "exactly-once",
        [
          Alcotest.test_case "lost response + retry = exactly once" `Quick
            test_lost_response_exactly_once;
          Alcotest.test_case "lost response without retry is a hard failure" `Quick
            test_lost_response_without_retries;
          Alcotest.test_case "replay cache expiry boundary" `Quick test_replay_cache_boundary;
        ] );
    ]
