(* Soak: sustained mixed load against one world.

   Hundreds of operations against the same servers — logins, capability
   grants and uses, group assertions, check payments — checking that state
   stays bounded (replay caches purge), metrics stay sane, and determinism
   holds across two identically-seeded runs. *)

module W = Testkit
module R = Restriction

type soak_world = {
  w : W.world;
  users : (Principal.t * Crypto.Rsa.private_) array;
  fs : File_server.t;
  fs_name : Principal.t;
  gsrv : Group_server.t;
  gsrv_name : Principal.t;
  bank : Accounting_server.t;
  bank_name : Principal.t;
}

let build ?(seed = "soak") () =
  let w = W.create ~seed () in
  let drbg = Sim.Net.drbg w.W.net in
  let users =
    Array.init 5 (fun i ->
        let p, _ = W.enrol w (Printf.sprintf "user%d" i) in
        let rsa = Crypto.Rsa.generate drbg ~bits:512 in
        Directory.add_public w.W.dir p rsa.Crypto.Rsa.pub;
        (p, rsa))
  in
  let fs_name, fs_key = W.enrol w "fs" in
  let acl = Acl.create () in
  Array.iter
    (fun (p, _) ->
      Acl.add acl ~target:(Principal.to_string p ^ ".dat")
        { Acl.subject = Acl.Principal_is p; rights = []; restrictions = [] })
    users;
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  Array.iter
    (fun (p, _) -> File_server.put_direct fs ~path:(Principal.to_string p ^ ".dat") "data")
    users;
  let gsrv_name, gsrv_key = W.enrol w "groups" in
  let gsrv =
    Result.get_ok (Group_server.create w.W.net ~me:gsrv_name ~my_key:gsrv_key ~kdc:w.W.kdc_name ())
  in
  Group_server.install gsrv;
  Array.iter (fun (p, _) -> Group_server.add_member gsrv ~group:"everyone" p) users;
  let bank_name, bank_key = W.enrol w "bank" in
  let bank_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public w.W.dir bank_name bank_rsa.Crypto.Rsa.pub;
  let bank =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:bank_name ~my_key:bank_key ~kdc:w.W.kdc_name
         ~signing_key:bank_rsa
         ~lookup:(fun q -> Directory.public w.W.dir q)
         ())
  in
  Accounting_server.install bank;
  Array.iter
    (fun (p, _) ->
      let tgt = W.login w p in
      let creds = W.credentials_for w ~tgt bank_name in
      Result.get_ok (Accounting_server.open_account w.W.net ~creds ~name:p.Principal.name);
      ignore
        (Ledger.mint (Accounting_server.ledger bank) ~name:p.Principal.name ~currency:"usd" 1000))
    users;
  { w; users; fs; fs_name; gsrv; gsrv_name; bank; bank_name }

(* One deterministic operation mix; returns a digest of observable results
   for the determinism check. *)
let run_mix sw rounds =
  let rng = Crypto.Drbg.create ~seed:"soak ops" in
  let digest = Buffer.create 256 in
  let note fmt = Printf.ksprintf (Buffer.add_string digest) fmt in
  for round = 1 to rounds do
    let i = Crypto.Drbg.uniform_int rng (Array.length sw.users) in
    let j = Crypto.Drbg.uniform_int rng (Array.length sw.users) in
    let user, user_rsa = sw.users.(i) in
    (* A peer distinct from the grantor: when the presenter owns the file
       itself, the guard grants on direct authority and correctly leaves an
       attached accept-once proxy unconsumed. *)
    let j = if i = j then (j + 1) mod Array.length sw.users else j in
    let peer, _ = sw.users.(j) in
    let tgt = W.login sw.w user in
    match Crypto.Drbg.uniform_int rng 4 with
    | 0 ->
        (* Own-file read. *)
        let creds = W.credentials_for sw.w ~tgt sw.fs_name in
        let path = Principal.to_string user ^ ".dat" in
        note "r%d:%b;" round
          (Result.is_ok (File_server.read sw.w.W.net ~creds ~path ()))
    | 1 ->
        (* Grant the peer a single-use capability; the peer uses it twice
           (second must fail: accept-once). *)
        let creds = W.credentials_for sw.w ~tgt sw.fs_name in
        let path = Principal.to_string user ^ ".dat" in
        let once = Printf.sprintf "soak-%d" round in
        let cap =
          Proxy.grant_conventional ~drbg:(Sim.Net.drbg sw.w.W.net) ~now:(W.now sw.w)
            ~expires:(W.now sw.w + W.hour) ~grantor:user ~session_key:creds.Ticket.session_key
            ~base:creds.Ticket.ticket_blob
            ~restrictions:
              [ R.Authorized [ { R.target = path; ops = [ "read" ] } ]; R.Accept_once once ]
        in
        let tgt_p = W.login sw.w peer in
        let creds_p = W.credentials_for sw.w ~tgt:tgt_p sw.fs_name in
        let attach () =
          File_server.attach sw.w.W.net ~proxy:cap ~server:sw.fs_name ~operation:"read" ~path
        in
        let first = File_server.read sw.w.W.net ~creds:creds_p ~proxies:[ attach () ] ~path () in
        let second = File_server.read sw.w.W.net ~creds:creds_p ~proxies:[ attach () ] ~path () in
        note "c%d:%b,%b;" round (Result.is_ok first) (Result.is_ok second);
        if Result.is_ok second then failwith "accept-once capability used twice"
    | 2 ->
        (* Group-proxy assertion at the file server (everyone group is not
           in the ACL, so access is denied — but cleanly). *)
        let creds_g = W.credentials_for sw.w ~tgt sw.gsrv_name in
        let gp =
          Group_server.request_membership_proxy sw.w.W.net ~creds:creds_g ~group:"everyone"
            ~end_server:sw.fs_name ()
        in
        note "g%d:%b;" round (Result.is_ok gp)
    | 3 ->
        (* A small check payment to the peer. *)
        begin
          let amount = 1 + Crypto.Drbg.uniform_int rng 5 in
          let check =
            Check.write ~drbg:(Sim.Net.drbg sw.w.W.net) ~now:(W.now sw.w)
              ~expires:(W.now sw.w + W.hour) ~payor:user ~payor_key:user_rsa
              ~account:(Accounting_server.account sw.bank user.Principal.name)
              ~payee:peer ~currency:"usd" ~amount ()
          in
          let tgt_p = W.login sw.w peer in
          let creds_pb = W.credentials_for sw.w ~tgt:tgt_p sw.bank_name in
          let r =
            Accounting_server.deposit sw.w.W.net ~creds:creds_pb
              ~endorser_key:(snd sw.users.(j)) ~check ~to_account:peer.Principal.name
          in
          note "p%d:%b;" round (Result.is_ok r)
        end
    | _ -> assert false
  done;
  Buffer.contents digest

let test_soak_invariants () =
  let sw = build () in
  let rounds = 120 in
  ignore (run_mix sw rounds);
  (* Money conserved. *)
  Alcotest.(check int) "usd conserved" (5 * 1000)
    (Ledger.total (Accounting_server.ledger sw.bank) ~currency:"usd");
  (* Metrics sane: every message was counted with nonzero bytes. *)
  let m = Sim.Net.metrics sw.w.W.net in
  Alcotest.(check bool) "messages flowed" true (Sim.Metrics.get m "net.messages" > 500);
  Alcotest.(check bool) "bytes flowed" true
    (Sim.Metrics.get m "net.bytes" > Sim.Metrics.get m "net.messages");
  Alcotest.(check int) "nothing dropped" 0 (Sim.Metrics.get m "net.dropped");
  (* Virtual time advanced monotonically with traffic. *)
  Alcotest.(check bool) "clock advanced" true (W.now sw.w > 0)

let test_soak_deterministic () =
  let run () =
    let sw = build ~seed:"soak-det" () in
    let digest = run_mix sw 40 in
    (digest, Sim.Metrics.snapshot (Sim.Net.metrics sw.w.W.net))
  in
  let d1, m1 = run () in
  let d2, m2 = run () in
  Alcotest.(check string) "identical observable behaviour" d1 d2;
  (* Not just the headline byte counter: the entire metrics snapshot —
     message and byte counts, crypto-operation tallies, cache statistics —
     must match counter for counter. *)
  Alcotest.(check (list (pair string int))) "identical metrics snapshots" m1 m2;
  Alcotest.(check bool) "snapshot non-trivial" true (List.length m1 > 3)

let () =
  Alcotest.run "soak"
    [ ( "soak",
        [ ("mixed load invariants", `Slow, test_soak_invariants);
          ("bit-for-bit determinism", `Slow, test_soak_deterministic) ] ) ]
