(* Revocation: signed epoch bulletins, subscriber staleness, explicit
   verify-cache invalidation, and the storm scenario end to end. *)

open Cluster
module R = Restriction

let realm = "r"
let p name = Principal.make ~realm name
let authority = p "bulletin-board"
let gina = p "gina"
let drbg = Crypto.Drbg.create ~seed:"revocation tests"
let minute = 60_000_000
let hour = 3_600_000_000

let ra_kp = Crypto.Rsa.generate drbg ~bits:512
let gina_kp = Crypto.Rsa.generate drbg ~bits:512
let other_kp = Crypto.Rsa.generate drbg ~bits:512

let lookup q = if Principal.equal q gina then Some gina_kp.Crypto.Rsa.pub else None

let grant ?(now = 0) ?(expires = 10 * hour) () =
  Proxy.grant_pk ~drbg ~now ~expires ~grantor:gina ~grantor_key:gina_kp ~proxy_bits:512
    ~restrictions:[ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] ]
    ()

let certs_of proxy =
  match proxy.Proxy.flavor with
  | Proxy.Public_key certs -> certs
  | _ -> Alcotest.fail "expected public-key chain"

let head_body proxy = (List.hd (certs_of proxy)).Proxy_cert.pk_body

let sign ?(epoch = 2) ?(issued_at = 0) entries =
  Revocation.sign ~key:ra_kp ~authority ~epoch ~issued_at entries

let subscriber ?staleness_bound_us ?(now = 0) () =
  Revocation.create ~authority ~authority_pub:ra_kp.Crypto.Rsa.pub ?staleness_bound_us ~now ()

(* --- bulletins --- *)

let test_bulletin_roundtrip () =
  let b =
    sign
      [ Revocation.By_serial "abc123";
        Revocation.By_grantor_epoch { grantor = gina; not_before = 42 } ]
  in
  Alcotest.(check bool) "authentic" true
    (Result.is_ok (Revocation.verify_bulletin ra_kp.Crypto.Rsa.pub b));
  let b' = Result.get_ok (Revocation.bulletin_of_wire (Revocation.bulletin_to_wire b)) in
  Alcotest.(check bool) "wire roundtrip preserves authenticity" true
    (Result.is_ok (Revocation.verify_bulletin ra_kp.Crypto.Rsa.pub b'));
  Alcotest.(check int) "epoch" b.Revocation.b_epoch b'.Revocation.b_epoch;
  Alcotest.(check int) "entries" 2 (List.length b'.Revocation.b_entries)

let test_bulletin_forgery_refused () =
  let b = sign [ Revocation.By_serial "abc123" ] in
  (* Wrong key. *)
  Alcotest.(check bool) "wrong authority key" true
    (Result.is_error (Revocation.verify_bulletin other_kp.Crypto.Rsa.pub b));
  (* Tampered content: an attacker cannot strip an entry. *)
  let stripped = { b with Revocation.b_entries = [] } in
  Alcotest.(check bool) "stripped entries refused" true
    (Result.is_error (Revocation.verify_bulletin ra_kp.Crypto.Rsa.pub stripped));
  (* Nor replay the signature onto a higher epoch. *)
  let bumped = { b with Revocation.b_epoch = 99 } in
  Alcotest.(check bool) "epoch splice refused" true
    (Result.is_error (Revocation.verify_bulletin ra_kp.Crypto.Rsa.pub bumped))

let test_apply_is_monotonic () =
  let t = subscriber () in
  let b2 = sign ~epoch:2 ~issued_at:100 [ Revocation.By_serial "s1" ] in
  let b3 = sign ~epoch:3 ~issued_at:200 [ Revocation.By_serial "s1" ] in
  (match Revocation.apply t b3 with
  | Ok (Revocation.Applied { fresh; _ }) -> Alcotest.(check int) "b3 fresh" 1 fresh
  | _ -> Alcotest.fail "b3 should apply");
  Alcotest.(check int) "epoch" 3 (Revocation.epoch t);
  Alcotest.(check int) "as_of" 200 (Revocation.as_of t);
  (* An older bulletin is a replay: ignored, state untouched. *)
  (match Revocation.apply t b2 with
  | Ok Revocation.Ignored -> ()
  | _ -> Alcotest.fail "b2 is old news");
  Alcotest.(check int) "epoch unchanged" 3 (Revocation.epoch t);
  Alcotest.(check int) "as_of unchanged" 200 (Revocation.as_of t);
  (* A heartbeat (same entries, newer epoch) applies with nothing fresh. *)
  let b4 = sign ~epoch:4 ~issued_at:300 [ Revocation.By_serial "s1" ] in
  (match Revocation.apply t b4 with
  | Ok (Revocation.Applied { fresh; _ }) -> Alcotest.(check int) "heartbeat fresh" 0 fresh
  | _ -> Alcotest.fail "heartbeat should apply");
  Alcotest.(check int) "as_of advanced by heartbeat" 300 (Revocation.as_of t);
  (* A bulletin signed by the wrong key never applies. *)
  let forged =
    Revocation.sign ~key:other_kp ~authority ~epoch:9 ~issued_at:900
      [ Revocation.By_serial "s2" ]
  in
  Alcotest.(check bool) "forged refused" true (Result.is_error (Revocation.apply t forged));
  Alcotest.(check int) "forged did not advance" 4 (Revocation.epoch t)

(* --- revocation semantics --- *)

let test_revoked_by_serial_and_epoch () =
  let t = subscriber () in
  let victim = grant ~now:50 () in
  let body = head_body victim in
  Alcotest.(check bool) "clean body passes" true (Result.is_ok (Revocation.revoked t body));
  let _ =
    Result.get_ok
      (Revocation.apply t (sign ~epoch:2 [ Revocation.By_serial body.Proxy_cert.serial ]))
  in
  Alcotest.(check bool) "serial revoked" true (Result.is_error (Revocation.revoked t body));
  (* Grantor-epoch: everything gina signed before 100 dies; a cert re-issued
     at 100 or later (the refresh path) survives. *)
  let t2 = subscriber () in
  let _ =
    Result.get_ok
      (Revocation.apply t2
         (sign ~epoch:2
            [ Revocation.By_grantor_epoch { grantor = gina; not_before = 100 } ]))
  in
  Alcotest.(check bool) "old issue revoked" true (Result.is_error (Revocation.revoked t2 body));
  let refreshed = head_body (grant ~now:100 ()) in
  Alcotest.(check bool) "re-issued cert survives" true
    (Result.is_ok (Revocation.revoked t2 refreshed))

let test_stale_fails_closed () =
  let bound = 10 * minute in
  let t = subscriber ~staleness_bound_us:bound ~now:0 () in
  let body = head_body (grant ()) in
  Alcotest.(check bool) "fresh at creation" false (Revocation.stale t ~now:bound);
  Alcotest.(check bool) "inside bound: clean cert passes" true
    (Result.is_ok (Revocation.check t ~now:bound body));
  Alcotest.(check bool) "past bound: stale" true (Revocation.stale t ~now:(bound + 1));
  Alcotest.(check bool) "past bound: even a clean cert is refused" true
    (Result.is_error (Revocation.check t ~now:(bound + 1) body));
  (* A heartbeat refreshes the anchor and reopens service. *)
  let _ = Result.get_ok (Revocation.apply t (sign ~epoch:2 ~issued_at:(bound + 1) [])) in
  Alcotest.(check bool) "heartbeat unstales" true
    (Result.is_ok (Revocation.check t ~now:(2 * bound) body))

(* --- verify-cache invalidation --- *)

let test_cache_explicit_invalidation () =
  let invalidated = ref 0 in
  let cache = Verify_cache.create ~on_invalidate:(fun () -> incr invalidated) () in
  let certs = certs_of (grant ()) in
  Alcotest.(check bool) "verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs));
  let s = Verify_cache.stats cache in
  Alcotest.(check int) "cached" 1 s.Verify_cache.size;
  let n = Verify_cache.bump_generation cache in
  Alcotest.(check int) "bump retires every entry" 1 n;
  Alcotest.(check int) "observer fired per entry" 1 !invalidated;
  Alcotest.(check int) "generation advanced" 1 (Verify_cache.generation cache);
  let s = Verify_cache.stats cache in
  Alcotest.(check int) "empty" 0 s.Verify_cache.size;
  Alcotest.(check int) "invalidations counted" 1 s.Verify_cache.invalidations;
  (* Re-presentation is a miss — it must re-run RSA, not re-hit. *)
  Alcotest.(check bool) "re-verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs));
  let s = Verify_cache.stats cache in
  Alcotest.(check int) "no hit after bump" 0 s.Verify_cache.hits;
  (* Per-key invalidation: only the named entry goes. *)
  let certs2 = certs_of (grant ()) in
  Alcotest.(check bool) "second chain verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs2));
  Alcotest.(check int) "two cached" 2 (Verify_cache.stats cache).Verify_cache.size;
  Verify_cache.invalidate cache "no-such-key";
  Alcotest.(check int) "missing key is a no-op" 2 (Verify_cache.stats cache).Verify_cache.size

let test_revoked_link_never_served_from_cache () =
  (* The storm path in miniature: a chain is verified and cached, then a
     bulletin revokes its head. The cached entry must not shield it. *)
  let t = subscriber () in
  let cache = Verify_cache.create () in
  let proxy = grant ~now:0 () in
  let certs = certs_of proxy in
  Alcotest.(check bool) "warm" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~revocation:t ~now:100 certs));
  let serial = (head_body proxy).Proxy_cert.serial in
  let _ = Result.get_ok (Revocation.apply t (sign ~epoch:2 [ Revocation.By_serial serial ])) in
  (* Even with the stale cached signature entry still present, the verifier
     consults revocation on every link. *)
  (match Verifier.verify_pk ~lookup ~cache ~revocation:t ~now:100 certs with
  | Error e ->
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) ("names revocation: " ^ e) true
        (contains e "revoked" || contains e "revocation")
  | Ok _ -> Alcotest.fail "revoked chain served")

let test_guard_bulletin_invalidates_and_meters () =
  let net = Sim.Net.create ~seed:"guard-bulletin" () in
  let fs = p "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*"
    { Acl.subject = Acl.Principal_is gina; rights = [ "read" ]; restrictions = [] };
  let guard =
    Guard.create net ~me:fs ~my_key:"k" ~lookup_pub:lookup ~revocation:(subscriber ()) ~acl ()
  in
  let proxy = grant () in
  let decide () =
    let presented =
      Guard.present ~proxy ~time:(Sim.Net.now net) ~server:fs ~operation:"read" ~target:"file1" ()
    in
    Guard.decide guard ~operation:"read" ~target:"file1" ~presenter:(p "carol")
      ~proxies:[ presented ] ()
  in
  Alcotest.(check bool) "granted while clean" true (Result.is_ok (decide ()));
  Alcotest.(check bool) "cache warm" true
    ((Verify_cache.stats (Guard.verify_cache guard)).Verify_cache.size > 0);
  let serial = (head_body proxy).Proxy_cert.serial in
  (* A heartbeat applies without touching the cache... *)
  (match Guard.apply_bulletin guard (sign ~epoch:2 []) with
  | Ok true -> ()
  | _ -> Alcotest.fail "heartbeat should advance");
  Alcotest.(check int) "heartbeat does not bump"
    0
    (Sim.Metrics.get (Sim.Net.metrics net) "verify_cache.generation_bumps");
  (* ...while fresh coverage retires the generation and meters it. *)
  (match Guard.apply_bulletin guard (sign ~epoch:3 [ Revocation.By_serial serial ]) with
  | Ok true -> ()
  | _ -> Alcotest.fail "revoking bulletin should advance");
  let m = Sim.Net.metrics net in
  Alcotest.(check int) "generation bumped" 1 (Sim.Metrics.get m "verify_cache.generation_bumps");
  Alcotest.(check bool) "invalidations metered into Sim.Metrics" true
    (Sim.Metrics.get m "verify_cache.invalidations" > 0);
  Alcotest.(check bool) "bulletins applied metered" true
    (Sim.Metrics.get m "revocation.bulletins_applied" >= 2);
  Alcotest.(check bool) "revoked after bulletin" true (Result.is_error (decide ()));
  Alcotest.(check bool) "denial metered" true (Sim.Metrics.get m "revocation.denials" > 0);
  (* Replaying the old bulletin is ignored and does not resurrect anything. *)
  (match Guard.apply_bulletin guard (sign ~epoch:2 []) with
  | Ok false -> ()
  | _ -> Alcotest.fail "old bulletin must be ignored");
  Alcotest.(check bool) "still revoked" true (Result.is_error (decide ()))

let test_shed_frees_reissued_accept_once () =
  (* Section 7.7 meets revocation: a check's accept-once record outlives
     the revocation of the grantor who wrote it. The bulletin must shed
     the dead grantor's records, or a legitimately re-issued check reusing
     the identifier bounces against a record that can never be redeemed. *)
  let net = Sim.Net.create ~seed:"guard-shed" () in
  let fs = p "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"*"
    { Acl.subject = Acl.Principal_is gina; rights = [ "read" ]; restrictions = [] };
  let guard =
    Guard.create net ~me:fs ~my_key:"k" ~lookup_pub:lookup ~revocation:(subscriber ()) ~acl ()
  in
  let check_no = "check-0042" in
  let issue ~now () =
    Proxy.grant_pk ~drbg ~now ~expires:(10 * hour) ~grantor:gina ~grantor_key:gina_kp
      ~proxy_bits:512
      ~restrictions:
        [ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ]; R.Accept_once check_no ]
      ()
  in
  let decide proxy =
    let presented =
      Guard.present ~proxy ~time:(Sim.Net.now net) ~server:fs ~operation:"read" ~target:"file1" ()
    in
    Guard.decide guard ~operation:"read" ~target:"file1" ~presenter:(p "carol")
      ~proxies:[ presented ] ()
  in
  let original = issue ~now:0 () in
  Alcotest.(check bool) "original check accepted" true (Result.is_ok (decide original));
  Alcotest.(check bool) "identifier recorded" true
    (Replay_cache.seen (Guard.replay_cache guard) ~now:(Sim.Net.now net) check_no);
  Alcotest.(check bool) "second presentation bounces" true (Result.is_error (decide original));
  (* Gina is revoked by grantor epoch; her accept-once records are shed
     with her. *)
  (match
     Guard.apply_bulletin guard
       (sign ~epoch:2 [ Revocation.By_grantor_epoch { grantor = gina; not_before = 100 } ])
   with
  | Ok true -> ()
  | _ -> Alcotest.fail "revoking bulletin should advance");
  Alcotest.(check bool) "records shed and metered" true
    (Sim.Metrics.get (Sim.Net.metrics net) "replay_cache.shed" > 0);
  Alcotest.(check bool) "identifier no longer held" false
    (Replay_cache.seen (Guard.replay_cache guard) ~now:(Sim.Net.now net) check_no);
  Alcotest.(check bool) "revoked check refused" true (Result.is_error (decide original));
  (* The re-issued check — same number, fresh post-revocation grant — must
     not collide with the dead record... *)
  Sim.Clock.advance (Sim.Net.clock net) 100;
  let reissued = issue ~now:100 () in
  Alcotest.(check bool) "re-issued check accepted" true (Result.is_ok (decide reissued));
  (* ...and accept-once still holds for the new incarnation. *)
  Alcotest.(check bool) "re-issued check is still accept-once" true
    (Result.is_error (decide reissued))

(* --- the storm scenario --- *)

let test_storm () =
  let cfg = Revocation_storm.default in
  let o = Revocation_storm.run cfg in
  (* Warm phase: every proxy works everywhere (2 passes x 2 servers x
     (grants + 1 hugh read)) + the voucher. *)
  Alcotest.(check int) "warm reads" ((2 * 2 * (cfg.Revocation_storm.grants + 1)) + 1)
    o.Revocation_storm.warm_reads;
  Alcotest.(check int) "revocations accepted" (cfg.Revocation_storm.grants + 1)
    o.Revocation_storm.revocations;
  Alcotest.(check bool) "epoch advanced" true (o.Revocation_storm.final_epoch > 1);
  (* Fresh server: revocation effective within one bulletin epoch. *)
  Alcotest.(check int) "fresh denials" cfg.Revocation_storm.grants
    o.Revocation_storm.fresh_denials;
  (* Partitioned server: degradation window, then fail closed. *)
  Alcotest.(check int) "degradation window serves" cfg.Revocation_storm.grants
    o.Revocation_storm.stale_window_served;
  Alcotest.(check int) "fail closed past bound" (cfg.Revocation_storm.grants + 1)
    o.Revocation_storm.stale_denials;
  Alcotest.(check int) "direct ACL still served while stale" 1
    o.Revocation_storm.direct_reads_while_stale;
  (* Refresh: the healthy lease renews, the revoked one is refused. *)
  Alcotest.(check bool) "refresh ok" true o.Revocation_storm.refresh_ok;
  Alcotest.(check bool) "revoked refresh refused" true
    o.Revocation_storm.refresh_refused_revoked;
  (* Heal: recovery, revoked stays revoked, accept-once state preserved. *)
  Alcotest.(check int) "healed denials" cfg.Revocation_storm.grants
    o.Revocation_storm.healed_denials;
  Alcotest.(check bool) "healed serves refreshed chain" true o.Revocation_storm.healed_serves;
  Alcotest.(check bool) "replay refused after heal" true o.Revocation_storm.replay_refused;
  (* The invalidation storm: generation bumps retired at least every warm
     chain on the synced server. *)
  Alcotest.(check bool) "generation bumps happened" true
    (o.Revocation_storm.generation_bumps > 0);
  Alcotest.(check bool) "storm retired the warm cache" true
    (o.Revocation_storm.invalidations >= cfg.Revocation_storm.grants + 1);
  (* Cluster: the bulletin reached the un-promoted standby too. *)
  Alcotest.(check bool) "bulletin on both replicas" true
    o.Revocation_storm.bulletin_on_standby;
  Alcotest.(check bool) "pre-storm check cleared" true o.Revocation_storm.check_cleared;
  Alcotest.(check bool) "post-storm check bounced" true o.Revocation_storm.check_bounced;
  (match o.Revocation_storm.conserved with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  Alcotest.(check bool) "stale denials metered" true
    (List.assoc "revocation.stale_denials" o.Revocation_storm.metrics > 0)

let test_storm_deterministic () =
  let a = Revocation_storm.run Revocation_storm.default in
  let b = Revocation_storm.run Revocation_storm.default in
  Alcotest.(check (list (pair string int))) "metrics byte-identical"
    a.Revocation_storm.metrics b.Revocation_storm.metrics;
  Alcotest.(check (list string)) "trace byte-identical" a.Revocation_storm.trace
    b.Revocation_storm.trace

let () =
  Alcotest.run "revocation"
    [ ( "bulletins",
        [ ("roundtrip", `Quick, test_bulletin_roundtrip);
          ("forgery refused", `Quick, test_bulletin_forgery_refused);
          ("apply is monotonic", `Quick, test_apply_is_monotonic) ] );
      ( "semantics",
        [ ("by serial and grantor epoch", `Quick, test_revoked_by_serial_and_epoch);
          ("stale fails closed", `Quick, test_stale_fails_closed) ] );
      ( "verify cache",
        [ ("explicit invalidation", `Quick, test_cache_explicit_invalidation);
          ("revoked link never served from cache", `Quick,
           test_revoked_link_never_served_from_cache);
          ("guard bulletin invalidates and meters", `Quick,
           test_guard_bulletin_invalidates_and_meters);
          ("shed frees re-issued accept-once identifiers", `Quick,
           test_shed_frees_reissued_accept_once) ] );
      ( "storm",
        [ ("revocation storm under churn", `Quick, test_storm);
          ("same seed, same bytes", `Quick, test_storm_deterministic) ] ) ]
