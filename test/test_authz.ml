(* Integration tests for the authorization stack: secure RPC, the end-server
   guard, capabilities, the authorization server (Fig. 3), the group server
   (Sec. 3.3), compound principals, and revocation (Sec. 3.1). *)

module R = Restriction
module W = Testkit

let world () = W.create ~seed:"authz tests" ()

(* --- secure rpc --- *)

let test_secure_rpc_roundtrip () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let echo, echo_key = W.enrol w "echo" in
  Secure_rpc.serve w.W.net ~me:echo ~my_key:echo_key (fun ctx payload ->
      Ok (Wire.L [ Principal.to_wire ctx.Secure_rpc.rpc_client; payload ]));
  let tgt = W.login w alice in
  let creds = W.credentials_for w ~tgt echo in
  match Secure_rpc.call w.W.net ~creds (Wire.S "ping") with
  | Error e -> Alcotest.fail e
  | Ok reply ->
      let client = Result.get_ok (Result.bind (Wire.field reply 0) Principal.of_wire) in
      Alcotest.(check bool) "server saw alice" true (Principal.equal client alice);
      Alcotest.(check (result string string)) "payload echoed" (Ok "ping")
        (Result.bind (Wire.field reply 1) Wire.to_string)

let test_secure_rpc_wrong_service () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let s1, k1 = W.enrol w "service1" in
  let s2, k2 = W.enrol w "service2" in
  Secure_rpc.serve w.W.net ~me:s1 ~my_key:k1 (fun _ _ -> Ok (Wire.S "s1"));
  Secure_rpc.serve w.W.net ~me:s2 ~my_key:k2 (fun _ _ -> Ok (Wire.S "s2"));
  let tgt = W.login w alice in
  let creds_s1 = W.credentials_for w ~tgt s1 in
  (* Redirect a ticket for s1 at s2: the seal is under s1's key, s2 must
     refuse. *)
  let forged = { creds_s1 with Ticket.cred_service = s2 } in
  match Secure_rpc.call w.W.net ~creds:forged (Wire.S "x") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ticket accepted by the wrong service"

let test_secure_rpc_replay_absorbed () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let svc, svc_key = W.enrol w "svc" in
  let hits = ref 0 in
  Secure_rpc.serve w.W.net ~me:svc ~my_key:svc_key (fun _ _ ->
      incr hits;
      Ok (Wire.I !hits));
  let tgt = W.login w alice in
  let creds = W.credentials_for w ~tgt svc in
  (* Capture the raw request, deliver it, then replay the captured bytes. *)
  let captured = ref None in
  Sim.Net.set_tap w.W.net (fun ~dir ~src:_ ~dst:_ payload ->
      (match dir with `Request when !captured = None -> captured := Some payload | _ -> ());
      Sim.Net.Deliver);
  (match Secure_rpc.call w.W.net ~creds (Wire.S "op") with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Sim.Net.clear_tap w.W.net;
  (match !captured with
  | None -> Alcotest.fail "nothing captured"
  | Some raw -> (
      match Sim.Net.rpc w.W.net ~src:"mallory" ~dst:(Principal.to_string svc) raw with
      | Ok reply ->
          (* The replay is answered from the response cache: the original
             reply, sealed under the session key mallory does not hold — a
             second execution never happens and nothing leaks. *)
          let tag = Result.get_ok (Result.bind (Wire.field (Result.get_ok (Wire.decode reply)) 0) Wire.to_string) in
          Alcotest.(check string) "cached sealed reply" "sealed" tag;
          Alcotest.(check int) "served from the response cache" 1
            (Sim.Metrics.get (Sim.Net.metrics w.W.net) "rpc.dedup")
      | Error e -> Alcotest.fail e));
  Alcotest.(check int) "handler ran once" 1 !hits

let test_secure_rpc_cache_eviction () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let svc, svc_key = W.enrol w "svc" in
  let hits = ref 0 in
  (* A deliberately tiny response cache: the third distinct request must
     evict the first (soonest-to-expire) entry and tick the metric. *)
  Secure_rpc.serve w.W.net ~me:svc ~my_key:svc_key ~response_cache_capacity:2 (fun _ _ ->
      incr hits;
      Ok (Wire.I !hits));
  let tgt = W.login w alice in
  let creds = W.credentials_for w ~tgt svc in
  let first = ref None in
  Sim.Net.set_tap w.W.net (fun ~dir ~src:_ ~dst:_ payload ->
      (match dir with `Request when !first = None -> first := Some payload | _ -> ());
      Sim.Net.Deliver);
  let evictions () = Sim.Metrics.get (Sim.Net.metrics w.W.net) "rpc.cache_evictions" in
  for i = 1 to 3 do
    match Secure_rpc.call w.W.net ~creds (Wire.I i) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  Sim.Net.clear_tap w.W.net;
  Alcotest.(check int) "handler ran three times" 3 !hits;
  Alcotest.(check int) "one eviction at capacity 2" 1 (evictions ());
  (* The evicted entry's retransmission window has closed: replaying the
     first raw request re-runs the handler instead of hitting the cache. *)
  (match !first with
  | None -> Alcotest.fail "nothing captured"
  | Some raw -> (
      match Sim.Net.rpc w.W.net ~src:"mallory" ~dst:(Principal.to_string svc) raw with
      | Ok _ -> Alcotest.(check int) "evicted request re-executes" 4 !hits
      | Error e -> Alcotest.fail e));
  Alcotest.(check int) "second eviction from the re-insert" 2 (evictions ());
  Alcotest.(check int) "no dedup hits" 0 (Sim.Metrics.get (Sim.Net.metrics w.W.net) "rpc.dedup")

(* --- guard + capabilities --- *)

type fs_world = {
  w : W.world;
  alice : Principal.t;
  bob : Principal.t;
  fileserver : Principal.t;
  guard : Guard.t;
}

let fileserver_world () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let bob, _ = W.enrol w "bob" in
  let fileserver, fs_key = W.enrol w "fileserver" in
  let acl = Acl.create () in
  Acl.add acl ~target:"file1"
    { Acl.subject = Acl.Principal_is alice; rights = []; restrictions = [] };
  let guard = Guard.create w.W.net ~me:fileserver ~my_key:fs_key ~acl () in
  { w; alice; bob; fileserver; guard }

let test_guard_direct_identity () =
  let fw = fileserver_world () in
  (match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~presenter:fw.alice () with
  | Ok d -> Alcotest.(check bool) "granted to alice" true (d.Guard.acting_for = [])
  | Error e -> Alcotest.fail e);
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~presenter:fw.bob () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob has no entry"

let test_capability_flow () =
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  (* Alice mints a read capability for file1 and passes it to bob. *)
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read" ] ())
  in
  let now = W.now fw.w in
  let presented =
    Guard.present ~proxy:cap ~time:now ~server:fw.fileserver ~operation:"read" ~target:"file1" ()
  in
  (match
     Guard.decide fw.guard ~operation:"read" ~target:"file1" ~presenter:fw.bob
       ~proxies:[ presented ] ()
   with
  | Ok d ->
      Alcotest.(check int) "acting for alice" 1 (List.length d.Guard.acting_for);
      Alcotest.(check bool) "grantor is alice" true
        (Principal.equal (List.hd d.Guard.acting_for) fw.alice)
  | Error e -> Alcotest.fail e);
  (* The same capability does not authorize writing. *)
  let presented_w =
    Guard.present ~proxy:cap ~time:now ~server:fw.fileserver ~operation:"write" ~target:"file1" ()
  in
  (match
     Guard.decide fw.guard ~operation:"write" ~target:"file1" ~presenter:fw.bob
       ~proxies:[ presented_w ] ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "write granted through a read capability");
  (* Nor reading another file. *)
  let presented_2 =
    Guard.present ~proxy:cap ~time:now ~server:fw.fileserver ~operation:"read" ~target:"file2" ()
  in
  match
    Guard.decide fw.guard ~operation:"read" ~target:"file2" ~presenter:fw.bob
      ~proxies:[ presented_2 ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "capability leaked to another object"

let test_capability_anonymous_bearer () =
  (* A bearer capability works with no presenter at all: possession is
     everything. *)
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read" ] ())
  in
  let presented =
    Guard.present ~proxy:cap ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ presented ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_capability_narrowing () =
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read"; "stat" ] ())
  in
  let narrowed =
    Result.get_ok
      (Capability.narrow ~drbg:(Sim.Net.drbg fw.w.W.net) ~now:(W.now fw.w)
         ~expires:(W.now fw.w + W.hour) ~target:"file1" ~ops:[ "stat" ] cap)
  in
  let now = W.now fw.w in
  let ok_stat =
    Guard.present ~proxy:narrowed ~time:now ~server:fw.fileserver ~operation:"stat"
      ~target:"file1" ()
  in
  (match Guard.decide fw.guard ~operation:"stat" ~target:"file1" ~proxies:[ ok_stat ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let try_read =
    Guard.present ~proxy:narrowed ~time:now ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ try_read ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "narrowed capability still reads"

let test_stolen_presentation_useless () =
  (* The eavesdropper captures a full presentation (certs + proof) and tries
     to use it for a different operation: the proof binding stops it. *)
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[] ())
  in
  let now = W.now fw.w in
  let presented =
    Guard.present ~proxy:cap ~time:now ~server:fw.fileserver ~operation:"read" ~target:"file1" ()
  in
  (* Mallory reuses the captured certificates + proof for "delete". *)
  match
    Guard.decide fw.guard ~operation:"delete" ~target:"file1" ~proxies:[ presented ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "captured presentation replayed for another operation"

let test_revocation_via_grantor () =
  (* Removing alice from the ACL kills every capability she granted. *)
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read" ] ())
  in
  let presented =
    Guard.present ~proxy:cap ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  (match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ presented ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Acl.remove_subject (Guard.acl fw.guard) ~target:"file1" (Acl.Principal_is fw.alice);
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ presented ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "capability survived revocation of its grantor"

let test_expired_capability () =
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read" ] ~lifetime_us:W.hour ())
  in
  Sim.Clock.advance (Sim.Net.clock fw.w.W.net) (2 * W.hour);
  let presented =
    Guard.present ~proxy:cap ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ presented ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expired capability accepted"

(* --- authorization server (Fig. 3) --- *)

let test_authz_server_flow () =
  let w = world () in
  let carol, _ = W.enrol w "carol" in
  let authz, authz_key = W.enrol w "authz" in
  let appserver, app_key = W.enrol w "appserver" in
  (* The authorization server's database says carol may "run" job42 with a
     page quota, which must be copied into the proxy (Sec. 3.5). *)
  let db = Acl.create () in
  Acl.add db ~target:"job42"
    {
      Acl.subject = Acl.Principal_is carol;
      rights = [ "run" ];
      restrictions = [ R.Quota ("pages", 10) ];
    };
  let server =
    Result.get_ok
      (Authz_server.create w.W.net ~me:authz ~my_key:authz_key ~kdc:w.W.kdc_name ~database:db ())
  in
  Authz_server.install server;
  (* The app server's ACL delegates authorization to the authz server. *)
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is authz; rights = []; restrictions = [] };
  let guard = Guard.create w.W.net ~me:appserver ~my_key:app_key ~acl () in
  (* Message 0-2 of Fig. 3. *)
  let tgt = W.login w carol in
  let creds_authz = W.credentials_for w ~tgt authz in
  let proxy =
    Result.get_ok
      (Authz_server.request_authorization w.W.net ~creds:creds_authz ~end_server:appserver
         ~target:"job42" ~operation:"run" ())
  in
  (* Message 3: present to the end-server. *)
  let now = W.now w in
  let presented =
    Guard.present ~proxy ~time:now ~server:appserver ~operation:"run" ~target:"job42" ()
  in
  (match Guard.decide guard ~operation:"run" ~target:"job42" ~presenter:carol ~proxies:[ presented ] () with
  | Ok d ->
      Alcotest.(check bool) "acting for authz server" true
        (List.exists (Principal.equal authz) d.Guard.acting_for)
  | Error e -> Alcotest.fail e);
  (* The copied quota restriction is live: an over-quota spend fails. *)
  let presented_big =
    Guard.present ~proxy ~time:now ~server:appserver ~operation:"run" ~target:"job42"
      ~spend:("pages", 100) ()
  in
  (match
     Guard.decide guard ~operation:"run" ~target:"job42" ~presenter:carol
       ~proxies:[ presented_big ] ~spend:("pages", 100) ()
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ACL-entry quota not copied into proxy");
  (* An unauthorized principal is refused by the authorization server. *)
  let dave, _ = W.enrol w "dave" in
  let tgt_d = W.login w dave in
  let creds_d = W.credentials_for w ~tgt:tgt_d authz in
  match
    Authz_server.request_authorization w.W.net ~creds:creds_d ~end_server:appserver
      ~target:"job42" ~operation:"run" ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "authz server granted to an unlisted principal"

let test_authz_server_delegate_mode () =
  let w = world () in
  let carol, _ = W.enrol w "carol" in
  let eve, _ = W.enrol w "eve" in
  let authz, authz_key = W.enrol w "authz" in
  let appserver, app_key = W.enrol w "appserver" in
  let db = Acl.create () in
  Acl.add db ~target:"job"
    { Acl.subject = Acl.Principal_is carol; rights = [ "run" ]; restrictions = [] };
  let server =
    Result.get_ok
      (Authz_server.create w.W.net ~me:authz ~my_key:authz_key ~kdc:w.W.kdc_name ~database:db ())
  in
  Authz_server.install server;
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is authz; rights = []; restrictions = [] };
  let guard = Guard.create w.W.net ~me:appserver ~my_key:app_key ~acl () in
  let tgt = W.login w carol in
  let creds = W.credentials_for w ~tgt authz in
  let proxy =
    Result.get_ok
      (Authz_server.request_authorization w.W.net ~creds ~end_server:appserver ~target:"job"
         ~operation:"run" ~delegate:true ())
  in
  let presented =
    Guard.present ~proxy ~time:(W.now w) ~server:appserver ~operation:"run" ~target:"job" ()
  in
  (* Carol herself: fine. *)
  (match
     Guard.decide guard ~operation:"run" ~target:"job" ~presenter:carol ~proxies:[ presented ] ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Eve presenting the same (stolen, including key) delegate proxy: the
     grantee restriction stops her. *)
  match
    Guard.decide guard ~operation:"run" ~target:"job" ~presenter:eve ~proxies:[ presented ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "delegate proxy used by a non-grantee"

(* --- group server (Sec. 3.3) --- *)

type group_world = {
  gw : W.world;
  alice : Principal.t;
  bob : Principal.t;
  gserver : Group_server.t;
  gserver_name : Principal.t;
  doorserver : Principal.t;
  gguard : Guard.t;
}

let group_world () =
  let gw = world () in
  let alice, _ = W.enrol gw "alice" in
  let bob, _ = W.enrol gw "bob" in
  let gname, gkey = W.enrol gw "groups" in
  let doorserver, door_key = W.enrol gw "door" in
  let gserver =
    Result.get_ok (Group_server.create gw.W.net ~me:gname ~my_key:gkey ~kdc:gw.W.kdc_name ())
  in
  Group_server.install gserver;
  Group_server.add_member gserver ~group:"admins" alice;
  let acl = Acl.create () in
  Acl.add acl ~target:"machine-room"
    {
      Acl.subject = Acl.Group (Group_server.group_name gserver "admins");
      rights = [ "open" ];
      restrictions = [];
    };
  let gguard = Guard.create gw.W.net ~me:doorserver ~my_key:door_key ~acl () in
  { gw; alice; bob; gserver; gserver_name = gname; doorserver; gguard }

let test_group_membership_flow () =
  let g = group_world () in
  let tgt = W.login g.gw g.alice in
  let creds = W.credentials_for g.gw ~tgt g.gserver_name in
  let gproxy =
    Result.get_ok
      (Group_server.request_membership_proxy g.gw.W.net ~creds ~group:"admins"
         ~end_server:g.doorserver ())
  in
  let now = W.now g.gw in
  let presented =
    Guard.present ~proxy:gproxy ~time:now ~server:g.doorserver ~operation:"assert-membership"
      ~target:"admins" ()
  in
  (match
     Guard.decide g.gguard ~operation:"open" ~target:"machine-room" ~presenter:g.alice
       ~group_proxies:[ presented ] ()
   with
  | Ok d ->
      Alcotest.(check int) "one group used" 1 (List.length d.Guard.via_groups)
  | Error e -> Alcotest.fail e);
  (* Without the group proxy, alice's bare identity is not in the ACL. *)
  match Guard.decide g.gguard ~operation:"open" ~target:"machine-room" ~presenter:g.alice () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "door opened without membership proof"

let test_group_proxy_bound_to_member () =
  (* The group proxy is a delegate proxy naming alice: bob presenting it
     (even with the key) is refused. *)
  let g = group_world () in
  let tgt = W.login g.gw g.alice in
  let creds = W.credentials_for g.gw ~tgt g.gserver_name in
  let gproxy =
    Result.get_ok
      (Group_server.request_membership_proxy g.gw.W.net ~creds ~group:"admins"
         ~end_server:g.doorserver ())
  in
  let presented =
    Guard.present ~proxy:gproxy ~time:(W.now g.gw) ~server:g.doorserver
      ~operation:"assert-membership" ~target:"admins" ()
  in
  match
    Guard.decide g.gguard ~operation:"open" ~target:"machine-room" ~presenter:g.bob
      ~group_proxies:[ presented ] ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bob asserted alice's membership"

let test_group_nonmember_refused () =
  let g = group_world () in
  let tgt = W.login g.gw g.bob in
  let creds = W.credentials_for g.gw ~tgt g.gserver_name in
  match
    Group_server.request_membership_proxy g.gw.W.net ~creds ~group:"admins"
      ~end_server:g.doorserver ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "group server granted to a non-member"

let test_group_removal_blocks_new_proxies () =
  let g = group_world () in
  Group_server.remove_member g.gserver ~group:"admins" g.alice;
  let tgt = W.login g.gw g.alice in
  let creds = W.credentials_for g.gw ~tgt g.gserver_name in
  match
    Group_server.request_membership_proxy g.gw.W.net ~creds ~group:"admins"
      ~end_server:g.doorserver ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "removed member still got a proxy"

(* --- compound principals (Sec. 3.5) --- *)

let test_compound_concurrence () =
  let w = world () in
  let alice, _ = W.enrol w "alice" in
  let host, _ = W.enrol w "workstation7" in
  let svc, svc_key = W.enrol w "launcher" in
  (* Launching requires BOTH the user and the host to concur. *)
  let acl = Acl.create () in
  Acl.add acl ~target:"missile"
    {
      Acl.subject = Acl.Compound [ Acl.Principal_is alice; Acl.Principal_is host ];
      rights = [ "launch" ];
      restrictions = [];
    };
  let guard = Guard.create w.W.net ~me:svc ~my_key:svc_key ~acl () in
  (* Alice alone is refused. *)
  (match Guard.decide guard ~operation:"launch" ~target:"missile" ~presenter:alice () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "single principal satisfied a compound entry");
  (* The host concurs by granting alice a proxy for the operation. *)
  let tgt_host = W.login w host in
  let host_proxy =
    Result.get_ok
      (Capability.mint_via_kdc w.W.net ~kdc:w.W.kdc_name ~tgt:tgt_host ~end_server:svc
         ~target:"missile" ~ops:[ "launch" ] ())
  in
  let presented =
    Guard.present ~proxy:host_proxy ~time:(W.now w) ~server:svc ~operation:"launch"
      ~target:"missile" ()
  in
  match
    Guard.decide guard ~operation:"launch" ~target:"missile" ~presenter:alice
      ~proxies:[ presented ] ()
  with
  | Ok d -> Alcotest.(check int) "host authority used" 1 (List.length d.Guard.acting_for)
  | Error e -> Alcotest.fail e

(* --- cascaded authorization through the guard --- *)

let test_cascade_through_guard () =
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let cap =
    Result.get_ok
      (Capability.mint_via_kdc fw.w.W.net ~kdc:fw.w.W.kdc_name ~tgt ~end_server:fw.fileserver
         ~target:"file1" ~ops:[ "read"; "stat" ] ())
  in
  (* Bob (intermediate) narrows and passes to a print spooler; depth-2
     cascade verified by the guard in one shot. *)
  let now = W.now fw.w in
  let narrowed =
    Result.get_ok
      (Capability.narrow ~drbg:(Sim.Net.drbg fw.w.W.net) ~now ~expires:(now + W.hour)
         ~target:"file1" ~ops:[ "read" ] cap)
  in
  let presented =
    Guard.present ~proxy:narrowed ~time:now ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ presented ] () with
  | Ok d -> Alcotest.(check int) "two serials in audit" 2 (List.length d.Guard.serials_used)
  | Error e -> Alcotest.fail e

(* --- accept-once through the guard --- *)

let test_accept_once_consumed () =
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let creds = W.credentials_for fw.w ~tgt fw.fileserver in
  let once =
    Proxy.grant_conventional ~drbg:(Sim.Net.drbg fw.w.W.net) ~now:(W.now fw.w)
      ~expires:(W.now fw.w + W.hour) ~grantor:fw.alice ~session_key:creds.Ticket.session_key
      ~base:creds.Ticket.ticket_blob
      ~restrictions:
        [ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ]; R.Accept_once "voucher-7" ]
  in
  let p1 =
    Guard.present ~proxy:once ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  (match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ p1 ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Second use of the same accept-once identifier bounces. *)
  let p2 =
    Guard.present ~proxy:once ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ p2 ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accept-once proxy accepted twice"

let test_accept_once_unused_not_consumed () =
  (* When the presenter's own identity satisfies the ACL, an attached
     accept-once proxy contributed nothing and must NOT be consumed: the
     guard charges only the authority it actually used. *)
  let fw = fileserver_world () in
  let tgt = W.login fw.w fw.alice in
  let creds = W.credentials_for fw.w ~tgt fw.fileserver in
  let once =
    Proxy.grant_conventional ~drbg:(Sim.Net.drbg fw.w.W.net) ~now:(W.now fw.w)
      ~expires:(W.now fw.w + W.hour) ~grantor:fw.alice ~session_key:creds.Ticket.session_key
      ~base:creds.Ticket.ticket_blob
      ~restrictions:
        [ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ]; R.Accept_once "spare" ]
  in
  let present () =
    Guard.present ~proxy:once ~time:(W.now fw.w) ~server:fw.fileserver ~operation:"read"
      ~target:"file1" ()
  in
  (* Alice presents her own proxy alongside her own identity: granted via
     identity, proxy untouched. *)
  (match
     Guard.decide fw.guard ~operation:"read" ~target:"file1" ~presenter:fw.alice
       ~proxies:[ present () ] ()
   with
  | Ok d -> Alcotest.(check int) "granted directly, no proxy used" 0 (List.length d.Guard.acting_for)
  | Error e -> Alcotest.fail e);
  (* The accept-once id is still fresh: an anonymous bearer can use the
     proxy once. *)
  (match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ present () ] () with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* ...and exactly once. *)
  match Guard.decide fw.guard ~operation:"read" ~target:"file1" ~proxies:[ present () ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accept-once consumed twice"

let () =
  Alcotest.run "authz"
    [ ( "secure-rpc",
        [ ("roundtrip", `Quick, test_secure_rpc_roundtrip);
          ("wrong service", `Quick, test_secure_rpc_wrong_service);
          ("replay absorbed, handler once", `Quick, test_secure_rpc_replay_absorbed);
          ("response cache bounded", `Quick, test_secure_rpc_cache_eviction) ] );
      ( "guard+capabilities",
        [ ("direct identity", `Quick, test_guard_direct_identity);
          ("capability flow", `Quick, test_capability_flow);
          ("anonymous bearer", `Quick, test_capability_anonymous_bearer);
          ("narrowing", `Quick, test_capability_narrowing);
          ("stolen presentation useless", `Quick, test_stolen_presentation_useless);
          ("revocation via grantor", `Quick, test_revocation_via_grantor);
          ("expiry", `Quick, test_expired_capability);
          ("cascade through guard", `Quick, test_cascade_through_guard);
          ("accept-once consumed", `Quick, test_accept_once_consumed);
          ("unused accept-once not consumed", `Quick, test_accept_once_unused_not_consumed) ] );
      ( "authorization-server",
        [ ("figure-3 flow", `Quick, test_authz_server_flow);
          ("delegate mode", `Quick, test_authz_server_delegate_mode) ] );
      ( "group-server",
        [ ("membership flow", `Quick, test_group_membership_flow);
          ("proxy bound to member", `Quick, test_group_proxy_bound_to_member);
          ("non-member refused", `Quick, test_group_nonmember_refused);
          ("removal blocks new proxies", `Quick, test_group_removal_blocks_new_proxies) ] );
      ("compound", [ ("user+host concurrence", `Quick, test_compound_concurrence) ]) ]
