(* Verification memo-cache: repeated presentations of an immutable
   certificate chain must hit the cache instead of redoing RSA, while
   tampered certificates, TTL-expired entries, and out-of-window
   certificates must never be served from it. *)

module R = Restriction

let realm = "r"
let p name = Principal.make ~realm name
let alice = p "alice"

let drbg = Crypto.Drbg.create ~seed:"verify cache tests"
let hour = 3_600_000_000
let t_exp = 10 * hour

let alice_kp = Crypto.Rsa.generate drbg ~bits:512
let lookup q = if Principal.equal q alice then Some alice_kp.Crypto.Rsa.pub else None

let grant_chain ?(expires = t_exp) ~depth () =
  let proxy =
    Proxy.grant_pk ~drbg ~now:0 ~expires ~grantor:alice ~grantor_key:alice_kp ~proxy_bits:512
      ~restrictions:[ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] ]
      ()
  in
  let rec extend proxy = function
    | 1 -> proxy
    | n ->
        extend
          (Result.get_ok
             (Proxy.restrict_pk ~drbg ~now:0 ~expires ~proxy_bits:512
                ~restrictions:[ R.Quota ("pages", n) ] proxy))
          (n - 1)
  in
  let proxy = extend proxy depth in
  match proxy.Proxy.flavor with
  | Proxy.Public_key certs -> certs
  | _ -> Alcotest.fail "expected public-key chain"

let with_tally f =
  let counts = Hashtbl.create 8 in
  let tally name = Hashtbl.replace counts name (1 + Option.value ~default:0 (Hashtbl.find_opt counts name)) in
  let result = f tally in
  (result, fun name -> Option.value ~default:0 (Hashtbl.find_opt counts name))

let check_stats label (want_hits, want_misses, want_size) cache =
  let s = Verify_cache.stats cache in
  Alcotest.(check int) (label ^ ": hits") want_hits s.Verify_cache.hits;
  Alcotest.(check int) (label ^ ": misses") want_misses s.Verify_cache.misses;
  Alcotest.(check int) (label ^ ": size") want_size s.Verify_cache.size

let test_repeat_presentation_hits () =
  let depth = 3 in
  let certs = grant_chain ~depth () in
  let cache = Verify_cache.create () in
  let (r1, count1) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:100 certs)
  in
  Alcotest.(check bool) "first presentation verifies" true (Result.is_ok r1);
  Alcotest.(check int) "first presentation pays full RSA" depth (count1 "crypto.rsa_verify");
  check_stats "after first" (0, depth, depth) cache;
  let (r2, count2) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:200 certs)
  in
  Alcotest.(check bool) "re-presentation verifies" true (Result.is_ok r2);
  Alcotest.(check int) "re-presentation pays no RSA" 0 (count2 "crypto.rsa_verify");
  Alcotest.(check int) "all signatures served from cache" depth (count2 "verify_cache.hits");
  check_stats "after second" (depth, depth, depth) cache;
  (* Without a cache argument, metering is the plain pre-cache metering. *)
  let (r3, count3) = with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~now:300 certs) in
  Alcotest.(check bool) "uncached path still verifies" true (Result.is_ok r3);
  Alcotest.(check int) "uncached path pays full RSA" depth (count3 "crypto.rsa_verify")

let test_tampered_cert_never_hits () =
  let certs = grant_chain ~depth:1 () in
  let cache = Verify_cache.create () in
  Alcotest.(check bool) "honest chain verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs));
  check_stats "warm" (0, 1, 1) cache;
  let tamper cert =
    let b = Bytes.of_string cert.Proxy_cert.signature in
    Bytes.set b 7 (Char.chr (Char.code (Bytes.get b 7) lxor 0x20));
    { cert with Proxy_cert.signature = Bytes.to_string b }
  in
  let tampered = List.map tamper certs in
  let (r, count) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:100 tampered)
  in
  Alcotest.(check bool) "tampered chain refused" true (Result.is_error r);
  Alcotest.(check int) "tampered cert was a miss, not a hit" 0 (count "verify_cache.hits");
  Alcotest.(check int) "tampered cert re-ran RSA" 1 (count "crypto.rsa_verify");
  (* The failed verification is not recorded: the cache still holds only the
     honest entry, and re-presenting the tampered chain fails again. *)
  check_stats "after tamper" (0, 2, 1) cache;
  Alcotest.(check bool) "tampered chain refused again" true
    (Result.is_error (Verifier.verify_pk ~lookup ~cache ~now:100 tampered));
  (* The honest chain still hits. *)
  let (r2, count2) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:100 certs)
  in
  Alcotest.(check bool) "honest chain fine" true (Result.is_ok r2);
  Alcotest.(check int) "honest chain hits" 1 (count2 "verify_cache.hits")

let test_ttl_expiry_reverifies () =
  let certs = grant_chain ~depth:1 () in
  let ttl = 1000 in
  let cache = Verify_cache.create ~ttl_us:ttl () in
  Alcotest.(check bool) "verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs));
  let (within, count_within) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:(99 + ttl) certs)
  in
  Alcotest.(check bool) "within ttl ok" true (Result.is_ok within);
  Alcotest.(check int) "within ttl: cache hit" 1 (count_within "verify_cache.hits");
  let (after, count_after) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~cache ~now:(100 + ttl) certs)
  in
  Alcotest.(check bool) "after ttl ok" true (Result.is_ok after);
  Alcotest.(check int) "after ttl: entry expired, miss" 0 (count_after "verify_cache.hits");
  Alcotest.(check int) "after ttl: RSA re-run" 1 (count_after "crypto.rsa_verify")

let test_expired_cert_refused_despite_warm_cache () =
  (* Certificate window: 0 .. 1000. TTL is much longer, so the signature
     entry is still "fresh" when the certificate itself has expired — the
     time-window check must refuse anyway. *)
  let certs = grant_chain ~expires:1000 ~depth:1 () in
  let cache = Verify_cache.create ~ttl_us:hour () in
  Alcotest.(check bool) "within window ok" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~cache ~now:100 certs));
  match Verifier.verify_pk ~lookup ~cache ~now:2000 certs with
  | Ok _ -> Alcotest.fail "expired certificate served from warm cache"
  | Error _ -> ()

let test_capacity_bound_and_evictions () =
  let evictions = ref 0 in
  let cap = 4 in
  let cache = Verify_cache.create ~capacity:cap ~on_evict:(fun () -> incr evictions) () in
  for i = 1 to 25 do
    let k =
      Verify_cache.key
        ~signed_bytes:(Printf.sprintf "cert-%d" i)
        ~signature:"sig" ~signer:"key"
    in
    Alcotest.(check bool) "fresh entry misses" false (Verify_cache.check cache ~now:i k);
    Verify_cache.record cache ~now:i k;
    Alcotest.(check bool) "bounded" true (Verify_cache.size cache <= cap)
  done;
  Alcotest.(check int) "size = capacity" cap (Verify_cache.size cache);
  Alcotest.(check int) "evictions counted" (25 - cap) !evictions;
  Alcotest.(check int) "stats agree" (25 - cap) (Verify_cache.stats cache).Verify_cache.evictions;
  (* FIFO: the oldest surviving entries are the newest four. *)
  let k i =
    Verify_cache.key ~signed_bytes:(Printf.sprintf "cert-%d" i) ~signature:"sig" ~signer:"key"
  in
  Alcotest.(check bool) "oldest evicted" false (Verify_cache.check cache ~now:26 (k 1));
  Alcotest.(check bool) "newest retained" true (Verify_cache.check cache ~now:26 (k 25));
  Verify_cache.flush cache;
  Alcotest.(check int) "flush empties" 0 (Verify_cache.size cache)

(* --- Replay_cache bounds (satellite: audit the long-lived caches) --- *)

let test_replay_cache_bound () =
  let evictions = ref 0 in
  let cap = 8 in
  let rc = Replay_cache.create ~capacity:cap ~on_evict:(fun () -> incr evictions) () in
  (* Fill with live entries, then flood: the cache must stay bounded and
     evict the soonest-expiring identifier. *)
  for i = 1 to 30 do
    match Replay_cache.record rc ~now:0 ~expires:(1000 + i) (Printf.sprintf "check-%d" i) with
    | Ok () -> Alcotest.(check bool) "bounded" true (Replay_cache.size rc <= cap)
    | Error e -> Alcotest.fail e
  done;
  Alcotest.(check int) "size = capacity" cap (Replay_cache.size rc);
  Alcotest.(check int) "flood evictions" (30 - cap) !evictions;
  (* Soonest-expiry-first: the longest-lived identifiers survive, so the
     replay window stays closed for the checks that matter longest. *)
  Alcotest.(check bool) "longest-lived still seen" true (Replay_cache.seen rc ~now:0 "check-30");
  Alcotest.(check bool) "soonest-expiring dropped" false (Replay_cache.seen rc ~now:0 "check-1");
  (* Expired entries are purged before anything live is evicted. *)
  let rc2 = Replay_cache.create ~capacity:2 ~on_evict:(fun () -> incr evictions) () in
  let before = !evictions in
  Result.get_ok (Replay_cache.record rc2 ~now:0 ~expires:10 "stale");
  Result.get_ok (Replay_cache.record rc2 ~now:0 ~expires:1000 "live");
  Result.get_ok (Replay_cache.record rc2 ~now:500 ~expires:1000 "new");
  Alcotest.(check int) "no eviction when purge suffices" before !evictions;
  Alcotest.(check bool) "live entry kept" true (Replay_cache.seen rc2 ~now:500 "live")

(* --- Lazy generation retirement (amortized bump_generation) --- *)

let test_bump_generation_lazy_amortized () =
  let invalidated = ref 0 in
  let cache = Verify_cache.create ~on_invalidate:(fun () -> incr invalidated) () in
  let k i = Verify_cache.key ~signed_bytes:(Printf.sprintf "c%d" i) ~signature:"s" ~signer:"k" in
  for i = 1 to 5 do
    Verify_cache.record cache ~now:0 (k i)
  done;
  Alcotest.(check int) "five live" 5 (Verify_cache.size cache);
  Alcotest.(check int) "first bump retires all five" 5 (Verify_cache.bump_generation cache);
  Alcotest.(check int) "on_invalidate fired per entry" 5 !invalidated;
  Alcotest.(check int) "size reflects retirement immediately" 0 (Verify_cache.size cache);
  Alcotest.(check int) "invalidations exact" 5
    (Verify_cache.stats cache).Verify_cache.invalidations;
  (* The dead generation is unreachable: lookups miss, and the miss does
     not resurrect anything. *)
  Alcotest.(check bool) "dead entry misses" false (Verify_cache.check cache ~now:1 (k 1));
  (* A storm of consecutive bumps costs nothing further: each retires the
     (empty) current generation, not the whole table again. *)
  for _ = 1 to 100 do
    Alcotest.(check int) "empty generation bump is free" 0 (Verify_cache.bump_generation cache)
  done;
  Alcotest.(check int) "storm charged no phantom invalidations" 5
    (Verify_cache.stats cache).Verify_cache.invalidations;
  Alcotest.(check int) "generation counter advanced" 101 (Verify_cache.generation cache);
  (* New-generation entries live normally and are charged exactly on the
     next bump. *)
  Verify_cache.record cache ~now:2 (k 9);
  Alcotest.(check bool) "new entry hits" true (Verify_cache.check cache ~now:2 (k 9));
  Alcotest.(check int) "next bump retires exactly the new entry" 1
    (Verify_cache.bump_generation cache);
  Alcotest.(check int) "total invalidations exact" 6
    (Verify_cache.stats cache).Verify_cache.invalidations

(* --- Link-level (chain-prefix) cache --- *)

(* A shared cascade re-delegated to several holders: grantor -> depth-k
   prefix, then each holder extends it by one certificate. This is the
   fan-out where per-presentation caching is O(k*M) and the link cache
   must be O(k+M). *)
let fanout ~prefix_len ~holders =
  let base =
    Proxy.grant_pk ~drbg ~now:0 ~expires:t_exp ~grantor:alice ~grantor_key:alice_kp
      ~proxy_bits:512
      ~restrictions:[ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] ]
      ()
  in
  let rec extend proxy = function
    | 0 -> proxy
    | n ->
        extend
          (Result.get_ok
             (Proxy.restrict_pk ~drbg ~now:0 ~expires:t_exp ~proxy_bits:512 ~restrictions:[]
                proxy))
          (n - 1)
  in
  let shared = extend base (prefix_len - 1) in
  List.init holders (fun _ ->
      match (extend shared 1).Proxy.flavor with
      | Proxy.Public_key certs -> certs
      | _ -> Alcotest.fail "expected public-key chain")

let link_stats label (want_hits, want_misses) lc =
  let s = Link_cache.stats lc in
  Alcotest.(check int) (label ^ ": hits") want_hits s.Link_cache.hits;
  Alcotest.(check int) (label ^ ": misses") want_misses s.Link_cache.misses

let test_link_cache_shared_prefix_fanout () =
  let prefix_len = 3 and holders = 4 in
  let chains = fanout ~prefix_len ~holders in
  let lc = Link_cache.create () in
  let rsa = ref 0 in
  List.iter
    (fun certs ->
      let (r, count) =
        with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~link_cache:lc ~now:100 certs)
      in
      Alcotest.(check bool) "holder chain verifies" true (Result.is_ok r);
      rsa := !rsa + count "crypto.rsa_verify")
    chains;
  (* First holder walks prefix + tail cold; every later holder resumes
     after the shared prefix and pays only its own tail. *)
  Alcotest.(check int) "O(k+M) RSA total" (prefix_len + holders) !rsa;
  link_stats "after fan-out" (holders - 1, 1) lc;
  (* A full re-presentation is one prefix hit and zero RSA. *)
  let (r, count) =
    with_tally (fun tally ->
        Verifier.verify_pk ~lookup ~tally ~link_cache:lc ~now:200 (List.hd chains))
  in
  Alcotest.(check bool) "re-presentation verifies" true (Result.is_ok r);
  Alcotest.(check int) "re-presentation pays no RSA" 0 (count "crypto.rsa_verify");
  link_stats "after re-presentation" (holders, 1) lc

let test_link_cache_bump_generation () =
  let certs = List.hd (fanout ~prefix_len:3 ~holders:1) in
  let lc = Link_cache.create () in
  Alcotest.(check bool) "cold chain verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~link_cache:lc ~now:100 certs));
  let live = Link_cache.size lc in
  Alcotest.(check bool) "walk recorded resume points" true (live > 0);
  Alcotest.(check int) "bump retires every prefix" live (Link_cache.bump_generation lc);
  Alcotest.(check int) "invalidations exact" live
    (Link_cache.stats lc).Link_cache.invalidations;
  Alcotest.(check int) "immediate re-bump is free" 0 (Link_cache.bump_generation lc);
  (* The next presentation re-pays the full RSA walk. *)
  let (r, count) =
    with_tally (fun tally -> Verifier.verify_pk ~lookup ~tally ~link_cache:lc ~now:200 certs)
  in
  Alcotest.(check bool) "re-verifies after bump" true (Result.is_ok r);
  Alcotest.(check int) "full RSA walk re-paid" (List.length certs) (count "crypto.rsa_verify")

let test_link_cache_tamper_and_expiry () =
  (* Tampering: a re-signed certificate changes the rolling digest, so a
     warm prefix can never vouch for altered bytes. *)
  let certs = List.hd (fanout ~prefix_len:2 ~holders:1) in
  let lc = Link_cache.create () in
  Alcotest.(check bool) "honest chain verifies" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~link_cache:lc ~now:100 certs));
  let tamper cert =
    let b = Bytes.of_string cert.Proxy_cert.signature in
    Bytes.set b 3 (Char.chr (Char.code (Bytes.get b 3) lxor 0x40));
    { cert with Proxy_cert.signature = Bytes.to_string b }
  in
  let tampered = tamper (List.hd certs) :: List.tl certs in
  (match Verifier.verify_pk ~lookup ~link_cache:lc ~now:100 tampered with
  | Ok _ -> Alcotest.fail "tampered chain served from warm prefix"
  | Error _ -> ());
  Alcotest.(check bool) "honest chain still hits" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~link_cache:lc ~now:100 certs));
  (* Expiry: a cached prefix re-checks every link's time window, so an
     expired certificate is refused even on a prefix hit. *)
  let short =
    match
      (Proxy.grant_pk ~drbg ~now:0 ~expires:1000 ~grantor:alice ~grantor_key:alice_kp
         ~proxy_bits:512
         ~restrictions:[ R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ] ]
         ())
        .Proxy.flavor
    with
    | Proxy.Public_key certs -> certs
    | _ -> Alcotest.fail "expected public-key chain"
  in
  let lc2 = Link_cache.create () in
  Alcotest.(check bool) "within window ok" true
    (Result.is_ok (Verifier.verify_pk ~lookup ~link_cache:lc2 ~now:100 short));
  match Verifier.verify_pk ~lookup ~link_cache:lc2 ~now:2000 short with
  | Ok _ -> Alcotest.fail "expired certificate served from cached prefix"
  | Error _ -> ()

let () =
  Alcotest.run "verify_cache"
    [ ( "memoized verification",
        [ ("repeat presentation hits", `Quick, test_repeat_presentation_hits);
          ("tampered cert never hits", `Quick, test_tampered_cert_never_hits);
          ("ttl expiry re-verifies", `Quick, test_ttl_expiry_reverifies);
          ("expired cert refused despite warm cache", `Quick,
           test_expired_cert_refused_despite_warm_cache);
          ("capacity bound + evictions", `Quick, test_capacity_bound_and_evictions);
          ("bump_generation is lazy and exact", `Quick, test_bump_generation_lazy_amortized) ] );
      ( "link cache",
        [ ("shared prefix fan-out is O(k+M)", `Quick, test_link_cache_shared_prefix_fanout);
          ("bump_generation retires prefixes", `Quick, test_link_cache_bump_generation);
          ("tamper and expiry never served", `Quick, test_link_cache_tamper_and_expiry) ] );
      ("replay cache", [ ("bounded under flood", `Quick, test_replay_cache_bound) ]) ]
