(* The sharded accounting cluster: consistent-hash placement, replay-log
   replication between a shard's primary and standby, and exactly-once
   semantics across a forced failover. *)

open Cluster

let usd = "usd"

let ok_or ctx = function
  | Ok v -> v
  | Error e -> failwith (Printf.sprintf "%s: %s" ctx e)

(* --- ring --- *)

let test_ring_lookup () =
  let ids = [ "s0"; "s1"; "s2"; "s3" ] in
  let ring = Ring.create ids in
  let keys = List.init 200 (Printf.sprintf "key-%d") in
  List.iter
    (fun k -> Alcotest.(check bool) "owner is a shard" true (List.mem (Ring.lookup ring k) ids))
    keys;
  (* Placement is a pure function of the shard set: an independently built
     ring (even from a shuffled, duplicated id list) agrees on every key. *)
  let ring' = Ring.create [ "s3"; "s1"; "s0"; "s2"; "s1" ] in
  List.iter
    (fun k -> Alcotest.(check string) k (Ring.lookup ring k) (Ring.lookup ring' k))
    keys;
  (* vnodes spread the keys: every shard owns some. *)
  List.iter
    (fun (s, n) -> Alcotest.(check bool) (s ^ " owns keys") true (n > 0))
    (Ring.spread ring keys)

let test_ring_stability () =
  (* Adding a shard only moves keys *to* the new shard; nothing reshuffles
     between the survivors. *)
  let before = Ring.create [ "s0"; "s1"; "s2" ] in
  let after = Ring.create [ "s0"; "s1"; "s2"; "s3" ] in
  List.iter
    (fun i ->
      let k = Printf.sprintf "key-%d" i in
      let b = Ring.lookup before k and a = Ring.lookup after k in
      if a <> b then Alcotest.(check string) (k ^ " moved only to the new shard") "s3" a)
    (List.init 300 Fun.id)

let test_ring_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Ring.create: no shards") (fun () ->
      ignore (Ring.create []))

(* --- a small hand-built cluster world --- *)

type actor = { name : string; principal : Principal.t; rsa : Crypto.Rsa.private_ }

type cw = {
  w : World.t;
  net : Sim.Net.t;
  ring : Ring.t;
  shards : (string * Shard.t) list;
  endpoints : (string * Router.endpoint) list;
}

let mk_cluster ~seed ids =
  let w = World.create ~seed () in
  let net = w.World.net in
  let retry = Sim.Retry.policy ~retries:8 ~timeout_us:10_000 () in
  let shards =
    List.map
      (fun id ->
        let p, key, rsa = World.enrol_pk w id in
        let s =
          ok_or id
            (Shard.create net ~me:p ~my_key:key ~kdc:w.World.kdc_name ~signing_key:rsa
               ~lookup:(fun q -> Directory.public w.World.dir q)
               ~collect_retry:retry ~repl_retry:retry ~primary_node:(id ^ "-a")
               ~standby_node:(id ^ "-b") ())
        in
        Shard.install s;
        (id, s))
      ids
  in
  List.iter
    (fun (_, s1) ->
      List.iter
        (fun (_, s2) ->
          if not (Principal.equal (Shard.logical s1) (Shard.logical s2)) then begin
            Shard.set_route s1 ~drawee:(Shard.logical s2)
              ~via:[ Shard.primary_node s2; Shard.standby_node s2 ]
              ~next_hop:(Shard.logical s2) ();
            ok_or "warm" (Shard.warm s1 ~drawee:(Shard.logical s2))
          end)
        shards)
    shards;
  let endpoints =
    List.map
      (fun (id, s) ->
        ( id,
          {
            Router.ep_logical = Shard.logical s;
            ep_primary = Shard.primary_node s;
            ep_standby = Shard.standby_node s;
          } ))
      shards
  in
  { w; net; ring = Ring.create ids; shards; endpoints }

let mk_actor cw name =
  let principal, _ = World.enrol cw.w name in
  let rsa = Crypto.Rsa.generate (Sim.Net.drbg cw.net) ~bits:512 in
  Directory.add_public cw.w.World.dir principal rsa.Crypto.Rsa.pub;
  { name; principal; rsa }

let mk_router cw actor =
  let creds_for logical =
    try
      let tgt = World.login cw.w actor.principal in
      Ok (World.credentials_for cw.w ~tgt logical)
    with Failure e -> Error e
  in
  Router.create cw.net ~ring:cw.ring ~endpoints:cw.endpoints ~creds_for ~retries:8
    ~timeout_us:10_000 ()

let write_check cw (buyer : actor) ~payee ~amount =
  let _, shard = List.find (fun (id, _) -> id = Ring.lookup cw.ring buyer.name) cw.shards in
  let now = World.now cw.w in
  Check.write ~drbg:(Sim.Net.drbg cw.net) ~now ~expires:(now + (24 * World.hour))
    ~payor:buyer.principal ~payor_key:buyer.rsa
    ~account:(Accounting_server.account (Shard.primary_server shard) buyer.name)
    ~payee ~currency:usd ~amount ()

(* Balances and holds must agree between a shard's replicas, account by
   account, currency by currency. *)
let check_replicas_agree (id, s) =
  let p = Accounting_server.ledger (Shard.primary_server s) in
  let st = Accounting_server.ledger (Shard.standby_server s) in
  Alcotest.(check (list string))
    (id ^ ": same accounts") (Ledger.accounts p) (Ledger.accounts st);
  List.iter
    (fun name ->
      List.iter
        (fun currency ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s/%s available" id name currency)
            (Ledger.balance p ~name ~currency)
            (Ledger.balance st ~name ~currency);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s/%s held" id name currency)
            (Ledger.held p ~name ~currency)
            (Ledger.held st ~name ~currency))
        (Ledger.currencies p))
    (Ledger.accounts p)

(* --- replication --- *)

let test_replication_mirrors_state () =
  let cw = mk_cluster ~seed:"repl-sync" [ "bank-0"; "bank-1" ] in
  let alice = mk_actor cw "alice" and bob = mk_actor cw "bob" and shop = mk_actor cw "shop" in
  let r_alice = mk_router cw alice and r_bob = mk_router cw bob and r_shop = mk_router cw shop in
  List.iter
    (fun (a, r) -> ok_or a.name (Router.open_account r ~name:a.name))
    [ (alice, r_alice); (bob, r_bob); (shop, r_shop) ];
  List.iter
    (fun a ->
      let _, s = List.find (fun (id, _) -> id = Ring.lookup cw.ring a.name) cw.shards in
      ok_or a.name (Shard.mint s ~name:a.name ~currency:usd 500))
    [ alice; bob ];
  (* Local transfers, cross-shard check clearing, and a balance read — all
     through primaries; the standbys must mirror every effect, including
     the redeemed check number. *)
  (match Router.transfer r_alice ~from_:alice.name ~to_:bob.name ~currency:usd ~amount:40 with
  | Ok () -> Alcotest.(check string) "same shard" (Ring.lookup cw.ring alice.name)
               (Ring.lookup cw.ring bob.name)
  | Error _ -> ());
  let paid =
    ok_or "deposit"
      (Router.deposit r_shop ~endorser_key:shop.rsa
         ~check:(write_check cw alice ~payee:shop.principal ~amount:120)
         ~to_account:shop.name)
  in
  Alcotest.(check int) "cleared face value" 120 paid;
  ignore (ok_or "balance" (Router.balance r_shop ~name:shop.name ~currency:usd));
  List.iter check_replicas_agree cw.shards;
  Alcotest.(check bool) "replication happened" true
    (Sim.Metrics.get (Sim.Net.metrics cw.net) "cluster.repl_applied" > 0)

(* --- failover --- *)

(* The sharpest exactly-once case: the primary executes a deposit, ships it
   to the standby, and dies before the client sees the reply. The client's
   retransmission fails over and must be answered from the standby's seeded
   response cache — same sealed bytes, no second execution. *)
let test_failover_exactly_once () =
  let cw = mk_cluster ~seed:"failover" [ "bank-0" ] in
  let alice = mk_actor cw "alice" and shop = mk_actor cw "shop" in
  let r_alice = mk_router cw alice and r_shop = mk_router cw shop in
  ok_or "alice" (Router.open_account r_alice ~name:alice.name);
  ok_or "shop" (Router.open_account r_shop ~name:shop.name);
  let _, shard = List.hd cw.shards in
  ok_or "mint" (Shard.mint shard ~name:alice.name ~currency:usd 1_000);
  (* One ledger per replica holds the same money (the standby is a mirror,
     not extra funds), so conservation is judged over a single copy. *)
  let before = Invariant.capture [ Accounting_server.ledger (Shard.primary_server shard) ] in
  let check = write_check cw alice ~payee:shop.principal ~amount:100 in
  let primary = Shard.primary_node shard in
  let shop_name = Principal.to_string shop.principal in
  (* Kill the primary at the worst instant: its reply to the shop is on the
     wire (the handler ran, replication shipped) when it goes down. *)
  let killed = ref false in
  Sim.Net.set_tap cw.net (fun ~dir ~src ~dst _ ->
      if dir = `Response && src = primary && dst = shop_name && not !killed then begin
        killed := true;
        Sim.Net.set_down cw.net ~name:primary;
        Sim.Net.Drop
      end
      else Sim.Net.Deliver);
  let paid =
    ok_or "deposit across failover"
      (Router.deposit r_shop ~endorser_key:shop.rsa ~check ~to_account:shop.name)
  in
  Sim.Net.clear_tap cw.net;
  Alcotest.(check bool) "the kill fired" true !killed;
  Alcotest.(check int) "credited once, full face value" 100 paid;
  let m = Sim.Net.metrics cw.net in
  Alcotest.(check bool) "failed over" true (Sim.Metrics.get m "cluster.failovers" >= 1);
  Alcotest.(check bool) "standby cache answered the retransmission" true
    (Sim.Metrics.get m "rpc.dedup" >= 1);
  (* The standby is now authoritative; the money moved exactly once. *)
  let auth = Accounting_server.ledger (Shard.authoritative shard) in
  Alcotest.(check int) "alice debited once" 900 (Ledger.balance auth ~name:alice.name ~currency:usd);
  Alcotest.(check int) "shop credited once" 100 (Ledger.balance auth ~name:shop.name ~currency:usd);
  (match Invariant.check before [ auth ] with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation across failover: " ^ e));
  (* Redeeming the same check again at the promoted standby must bounce:
     the accept-once record was replicated too. *)
  (match Router.deposit r_shop ~endorser_key:shop.rsa ~check ~to_account:shop.name with
  | Ok _ -> Alcotest.fail "same check paid twice after failover"
  | Error _ -> ());
  Alcotest.(check int) "still exactly once" 900
    (Ledger.balance auth ~name:alice.name ~currency:usd);
  (* Fresh work lands on the promoted standby. *)
  let paid2 =
    ok_or "post-failover deposit"
      (Router.deposit r_shop ~endorser_key:shop.rsa
         ~check:(write_check cw alice ~payee:shop.principal ~amount:50)
         ~to_account:shop.name)
  in
  Alcotest.(check int) "fresh deposit clears on the standby" 50 paid2;
  Alcotest.(check bool) "promoted" true (Shard.promoted shard)

(* --- the full scenario --- *)

let test_scenario_conservation_and_determinism () =
  let cfg =
    { Scenario.default with seed = "scenario-test"; shards = 2; ops = 30; buyers = 3 }
  in
  let o = Scenario.run cfg in
  (match o.Scenario.conserved with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("conservation: " ^ e));
  Alcotest.(check int) "no double redemption" 0 o.Scenario.double_redemptions;
  Alcotest.(check int) "the crashed shard promoted its standby" 1 o.Scenario.promotions;
  Alcotest.(check bool) "clients failed over" true (o.Scenario.failovers >= 1);
  Alcotest.(check bool) "replication shipped" true (o.Scenario.repl_shipped > 0);
  Alcotest.(check bool) "goodput positive" true (o.Scenario.succeeded > 0);
  let o2 = Scenario.run cfg in
  Alcotest.(check bool) "metrics snapshot identical on rerun" true
    (o.Scenario.metrics = o2.Scenario.metrics);
  Alcotest.(check bool) "trace identical on rerun" true (o.Scenario.trace = o2.Scenario.trace)

(* --- random ledger op sequences (the bugfix sweep's property) --- *)

let accounts = [ "a"; "b"; "c" ]
let currencies = [ "usd"; "pages" ]

(* (op kind, account, other account, currency, amount) *)
let gen_op =
  QCheck.Gen.(
    map
      (fun (kind, acct, acct2, cur, amount) -> (kind, acct, acct2, cur, amount))
      (tup5 (int_range 0 5) (oneofl accounts) (oneofl accounts) (oneofl currencies)
         (int_range 1 1_000)))

(* [flow] accumulates net money created: +mint, -debit, -take_hold (the
   two ops that move value out of this ledger, e.g. to a clearing peer). *)
let apply_op l flow (kind, acct, acct2, cur, amount) =
  match kind with
  | 0 -> if Ledger.mint l ~name:acct ~currency:cur amount = Ok () then flow := (cur, amount) :: !flow
  | 1 ->
      if Ledger.debit l ~name:acct ~currency:cur amount = Ok () then
        flow := (cur, -amount) :: !flow
  | 2 -> ignore (Ledger.transfer l ~from_:acct ~to_:acct2 ~currency:cur amount)
  | 3 -> ignore (Ledger.hold l ~name:acct ~id:(Printf.sprintf "h-%s-%d" acct amount) ~currency:cur amount)
  | 4 -> ignore (Ledger.release_hold l ~name:acct ~id:(Printf.sprintf "h-%s-%d" acct amount))
  | _ -> (
      match Ledger.take_hold l ~name:acct ~id:(Printf.sprintf "h-%s-%d" acct amount) with
      | Ok (cur', taken) -> flow := (cur', -taken) :: !flow
      | Error _ -> ())

let prop_ledger_invariants =
  QCheck.Test.make ~name:"random op sequences: conservation, no negatives, journal replays"
    ~count:60
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      let l = Ledger.create () in
      let journal = ref [] in
      Ledger.set_journal l (Some (fun op -> journal := op :: !journal));
      let owner = Principal.make ~realm:"x" "owner" in
      List.iter (fun name -> ignore (Ledger.open_account l ~owner ~name)) accounts;
      let flow = ref [] in
      List.iter (apply_op l flow) ops;
      (* 1. No account ever shows a negative available balance. *)
      List.iter
        (fun name ->
          List.iter
            (fun currency ->
              if Ledger.balance l ~name ~currency < 0 then
                QCheck.Test.fail_reportf "negative balance on %s/%s" name currency)
            currencies)
        accounts;
      (* 2. Per-currency conservation: the total equals the net of the
         ops that create or remove money (mint, debit, take_hold);
         transfers and holds only move it around. *)
      List.iter
        (fun currency ->
          let expected =
            List.fold_left (fun acc (c, a) -> if c = currency then acc + a else acc) 0 !flow
          in
          if Ledger.total l ~currency <> expected then
            QCheck.Test.fail_reportf "%s: total %d <> net flow %d" currency
              (Ledger.total l ~currency) expected)
        currencies;
      (* 3. Replaying the journal rebuilds the exact state — the property
         replication relies on. *)
      let l2 = Ledger.create () in
      List.iter
        (fun op ->
          match Ledger.apply l2 (ok_or "op round-trip" (Ledger.op_of_wire (Ledger.op_to_wire op))) with
          | Ok _ -> ()
          | Error e -> QCheck.Test.fail_reportf "journal replay refused: %s" e)
        (List.rev !journal);
      List.iter
        (fun name ->
          List.iter
            (fun currency ->
              if
                Ledger.balance l ~name ~currency <> Ledger.balance l2 ~name ~currency
                || Ledger.held l ~name ~currency <> Ledger.held l2 ~name ~currency
              then QCheck.Test.fail_reportf "replica diverged on %s/%s" name currency)
            currencies)
        accounts;
      true)

(* The same op mix pushed through a live one-shard cluster: every effect
   the primary applies must reach the standby through real replication. *)
let test_random_ops_through_shard () =
  let cw = mk_cluster ~seed:"random-ops" [ "bank-0" ] in
  let alice = mk_actor cw "alice" and bob = mk_actor cw "bob" and shop = mk_actor cw "shop" in
  let r_alice = mk_router cw alice and r_bob = mk_router cw bob and r_shop = mk_router cw shop in
  List.iter
    (fun (a, r) -> ok_or a.name (Router.open_account r ~name:a.name))
    [ (alice, r_alice); (bob, r_bob); (shop, r_shop) ];
  let _, shard = List.hd cw.shards in
  ok_or "mint" (Shard.mint shard ~name:alice.name ~currency:usd 2_000);
  ok_or "mint" (Shard.mint shard ~name:bob.name ~currency:usd 2_000);
  let wl = Crypto.Drbg.create ~seed:"random-ops-workload" in
  for _ = 1 to 40 do
    match Crypto.Drbg.uniform_int wl 4 with
    | 0 ->
        ignore
          (Router.transfer r_alice ~from_:alice.name ~to_:bob.name ~currency:usd
             ~amount:(1 + Crypto.Drbg.uniform_int wl 50))
    | 1 ->
        ignore
          (Router.transfer r_bob ~from_:bob.name ~to_:alice.name ~currency:usd
             ~amount:(1 + Crypto.Drbg.uniform_int wl 50))
    | 2 ->
        ignore
          (Router.deposit r_shop ~endorser_key:shop.rsa
             ~check:
               (write_check cw
                  (if Crypto.Drbg.uniform_int wl 2 = 0 then alice else bob)
                  ~payee:shop.principal ~amount:(1 + Crypto.Drbg.uniform_int wl 40))
             ~to_account:shop.name)
    | _ -> ignore (Router.balance r_alice ~name:alice.name ~currency:usd)
  done;
  List.iter check_replicas_agree cw.shards

let () =
  Alcotest.run "cluster"
    [ ( "ring",
        [ ("lookup is total and agreed", `Quick, test_ring_lookup);
          ("adding a shard moves keys only to it", `Quick, test_ring_stability);
          ("empty shard set rejected", `Quick, test_ring_empty_rejected) ] );
      ( "replication",
        [ ("standby mirrors the primary", `Slow, test_replication_mirrors_state);
          ("random op mix through one shard", `Slow, test_random_ops_through_shard) ] );
      ( "failover",
        [ ("exactly-once across a mid-reply crash", `Slow, test_failover_exactly_once) ] );
      ( "scenario",
        [ ("conservation + determinism under crash", `Slow,
           test_scenario_conservation_and_determinism) ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_ledger_invariants ]) ]
