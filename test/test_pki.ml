(* PKI substrate: CA certificates and the networked name server. *)

let realm = "pki.test"
let p name = Principal.make ~realm name

let drbg = Crypto.Drbg.create ~seed:"pki tests"
let alice = p "alice"
let alice_kp = Crypto.Rsa.generate drbg ~bits:512

let make_ca () = Ca.create drbg ~name:(p "ca") ~bits:512

let test_issue_verify () =
  let ca = make_ca () in
  let cert = Ca.issue ca ~now:100 ~lifetime:1000 alice alice_kp.Crypto.Rsa.pub in
  (match Ca.verify ~ca_pub:(Ca.ca_pub ca) ~now:500 cert with
  | Ok binding ->
      Alcotest.(check bool) "subject" true (Principal.equal binding.Ca.subject alice)
  | Error e -> Alcotest.fail e);
  (* Expired and not-yet-valid are refused. *)
  Alcotest.(check bool) "expired" true
    (Result.is_error (Ca.verify ~ca_pub:(Ca.ca_pub ca) ~now:1100 cert));
  Alcotest.(check bool) "not yet valid" true
    (Result.is_error (Ca.verify ~ca_pub:(Ca.ca_pub ca) ~now:50 cert));
  (* A different CA's key does not verify it. *)
  let other = Ca.create drbg ~name:(p "other-ca") ~bits:512 in
  Alcotest.(check bool) "wrong CA" true
    (Result.is_error (Ca.verify ~ca_pub:(Ca.ca_pub other) ~now:500 cert))

let test_cert_wire () =
  let ca = make_ca () in
  let cert = Ca.issue ca ~now:0 ~lifetime:1000 alice alice_kp.Crypto.Rsa.pub in
  match Ca.cert_of_wire (Ca.cert_to_wire cert) with
  | Ok cert' ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Result.is_ok (Ca.verify ~ca_pub:(Ca.ca_pub ca) ~now:500 cert'))
  | Error e -> Alcotest.fail e

let test_name_server () =
  let net = Sim.Net.create ~seed:"pki net" () in
  let ca = make_ca () in
  let ns_name = p "nameserver" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  let cert = Ca.issue ca ~now:0 ~lifetime:1_000_000 alice alice_kp.Crypto.Rsa.pub in
  Name_server.publish ns cert;
  (match Name_server.lookup net ~server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"client" alice with
  | Ok pub ->
      let signature = Crypto.Rsa.sign alice_kp "probe" in
      Alcotest.(check bool) "returned key verifies alice" true
        (Crypto.Rsa.verify pub ~msg:"probe" ~signature)
  | Error e -> Alcotest.fail e);
  (* Unknown principal. *)
  Alcotest.(check bool) "unknown" true
    (Result.is_error
       (Name_server.lookup net ~server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"client" (p "bob")));
  (* Revocation removes the binding. *)
  Name_server.revoke ns alice;
  Alcotest.(check bool) "revoked" true
    (Result.is_error
       (Name_server.lookup net ~server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"client" alice))

let test_name_server_tamper () =
  (* A tampering adversary substituting certificate bytes is caught by the
     CA signature check in the client. *)
  let net = Sim.Net.create ~seed:"pki tamper" () in
  let ca = make_ca () in
  let ns_name = p "nameserver" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  Name_server.publish ns (Ca.issue ca ~now:0 ~lifetime:1_000_000 alice alice_kp.Crypto.Rsa.pub);
  Sim.Net.set_tap net (fun ~dir ~src:_ ~dst:_ payload ->
      match dir with
      | `Response ->
          let b = Bytes.of_string payload in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
          Sim.Net.Replace (Bytes.to_string b)
      | `Request -> Sim.Net.Deliver);
  match Name_server.lookup net ~server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"client" alice with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered name-server reply accepted"

let test_resolver_caching () =
  let net = Sim.Net.create ~seed:"pki resolver" () in
  let ca = make_ca () in
  let ns_name = p "nameserver" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  Name_server.publish ns (Ca.issue ca ~now:0 ~lifetime:max_int alice alice_kp.Crypto.Rsa.pub);
  let resolver =
    Resolver.create net ~name_server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"guard"
      ~ttl_us:1_000_000 ()
  in
  let messages () = Sim.Metrics.get (Sim.Net.metrics net) "net.messages" in
  let m0 = messages () in
  Alcotest.(check bool) "first lookup hits the network" true (Resolver.lookup resolver alice <> None);
  Alcotest.(check int) "2 messages" (m0 + 2) (messages ());
  Alcotest.(check bool) "second lookup cached" true (Resolver.lookup resolver alice <> None);
  Alcotest.(check int) "no more messages" (m0 + 2) (messages ());
  Alcotest.(check int) "one entry" 1 (Resolver.cached resolver);
  (* After the TTL the binding refreshes — and revocation takes effect. *)
  Name_server.revoke ns alice;
  Alcotest.(check bool) "still cached within TTL" true (Resolver.lookup resolver alice <> None);
  Sim.Clock.advance (Sim.Net.clock net) 2_000_000;
  Alcotest.(check bool) "revocation visible after TTL" true (Resolver.lookup resolver alice = None);
  Alcotest.(check int) "entry dropped" 0 (Resolver.cached resolver);
  (* Unknown principals resolve to None without raising. *)
  Alcotest.(check bool) "unknown" true (Resolver.lookup resolver (p "nobody") = None)

let test_resolver_flush () =
  let net = Sim.Net.create ~seed:"pki flush" () in
  let ca = make_ca () in
  let ns_name = p "nameserver" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  Name_server.publish ns (Ca.issue ca ~now:0 ~lifetime:max_int alice alice_kp.Crypto.Rsa.pub);
  let resolver =
    Resolver.create net ~name_server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"guard" ()
  in
  ignore (Resolver.lookup resolver alice);
  Name_server.revoke ns alice;
  Resolver.flush resolver;
  Alcotest.(check bool) "flush forces refetch" true (Resolver.lookup resolver alice = None)

let test_resolver_metrics () =
  (* Cache behaviour is observable in Sim.Metrics: fresh hits, fetches, and
     TTL expiries each tick their own counter. *)
  let net = Sim.Net.create ~seed:"pki resolver metrics" () in
  let ca = make_ca () in
  let ns_name = p "nameserver" in
  let ns = Name_server.create net ~name:ns_name ~ca_pub:(Ca.ca_pub ca) in
  Name_server.install ns;
  Name_server.publish ns (Ca.issue ca ~now:0 ~lifetime:max_int alice alice_kp.Crypto.Rsa.pub);
  let resolver =
    Resolver.create net ~name_server:ns_name ~ca_pub:(Ca.ca_pub ca) ~caller:"guard"
      ~ttl_us:1_000_000 ()
  in
  let count name = Sim.Metrics.get (Sim.Net.metrics net) name in
  ignore (Resolver.lookup resolver alice);
  Alcotest.(check int) "cold lookup: one miss" 1 (count "resolver.misses");
  Alcotest.(check int) "cold lookup: no hit" 0 (count "resolver.hits");
  ignore (Resolver.lookup resolver alice);
  ignore (Resolver.lookup resolver alice);
  Alcotest.(check int) "warm lookups hit" 2 (count "resolver.hits");
  Alcotest.(check int) "no extra misses" 1 (count "resolver.misses");
  Alcotest.(check int) "nothing expired yet" 0 (count "resolver.expired");
  Sim.Clock.advance (Sim.Net.clock net) 2_000_000;
  ignore (Resolver.lookup resolver alice);
  Alcotest.(check int) "TTL expiry counted" 1 (count "resolver.expired");
  Alcotest.(check int) "expiry is also a miss" 2 (count "resolver.misses");
  (* An unknown principal is a plain miss, not an expiry. *)
  ignore (Resolver.lookup resolver (p "nobody"));
  Alcotest.(check int) "unknown principal: miss" 3 (count "resolver.misses");
  Alcotest.(check int) "unknown principal: no expiry" 1 (count "resolver.expired")

let () =
  Alcotest.run "pki"
    [ ( "ca",
        [ ("issue/verify", `Slow, test_issue_verify); ("wire", `Slow, test_cert_wire) ] );
      ( "name-server",
        [ ("lookup/revoke", `Slow, test_name_server);
          ("tamper detected", `Slow, test_name_server_tamper) ] );
      ( "resolver",
        [ ("caching and TTL", `Slow, test_resolver_caching);
          ("flush", `Slow, test_resolver_flush);
          ("metrics counters", `Slow, test_resolver_metrics) ] ) ]
