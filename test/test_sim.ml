(* Simulator substrate: clock, metrics, trace, network with adversary tap. *)

module Clock = Sim.Clock
module Metrics = Sim.Metrics
module Trace = Sim.Trace
module Net = Sim.Net

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check int) "starts at 0" 0 (Clock.now c);
  Clock.advance c 100;
  Clock.advance c 50;
  Alcotest.(check int) "advances" 150 (Clock.now c);
  Alcotest.(check_raises "negative" (Invalid_argument "Clock.advance: negative step")
      (fun () -> Clock.advance c (-1)));
  let c2 = Clock.create ~start:1000 () in
  Alcotest.(check int) "custom start" 1000 (Clock.now c2)

let test_metrics () =
  let m = Metrics.create () in
  Alcotest.(check int) "missing is 0" 0 (Metrics.get m "x");
  Metrics.incr m "x";
  Metrics.add m "x" 4;
  Metrics.add m "y" 10;
  Alcotest.(check int) "x" 5 (Metrics.get m "x");
  Alcotest.(check (list (pair string int))) "sorted list" [ ("x", 5); ("y", 10) ] (Metrics.to_list m);
  let before = Metrics.snapshot m in
  Metrics.add m "x" 2;
  Metrics.incr m "z";
  Alcotest.(check (list (pair string int))) "diff"
    [ ("x", 2); ("z", 1) ]
    (List.sort compare (Metrics.diff ~before ~after:(Metrics.snapshot m)));
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.get m "x")

let test_trace () =
  let t = Trace.create () in
  Trace.record t ~time:1 ~actor:"kdc" "issued ticket for alice";
  Trace.record t ~time:2 ~actor:"fileserver" "granted read";
  Alcotest.(check int) "two entries" 2 (List.length (Trace.entries t));
  (match Trace.find t ~actor:"kdc" ~substring:"alice" with
  | Some e -> Alcotest.(check int) "time" 1 e.Trace.time
  | None -> Alcotest.fail "expected to find entry");
  Alcotest.(check bool) "no match" true (Trace.find t ~actor:"kdc" ~substring:"bob" = None);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.entries t))

let echo_net () =
  let net = Net.create ~seed:"test" ~default_latency_us:100 () in
  Net.register net ~name:"server" (fun req -> "echo:" ^ req);
  net

let test_rpc_basic () =
  let net = echo_net () in
  (match Net.rpc net ~src:"client" ~dst:"server" "hi" with
  | Ok resp -> Alcotest.(check string) "response" "echo:hi" resp
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "2 messages" 2 (Metrics.get (Net.metrics net) "net.messages");
  Alcotest.(check int) "bytes counted"
    (String.length "hi" + String.length "echo:hi")
    (Metrics.get (Net.metrics net) "net.bytes");
  Alcotest.(check int) "latency applied both ways" 200 (Net.now net);
  Alcotest.(check bool) "unknown node" true
    (Result.is_error (Net.rpc net ~src:"client" ~dst:"nobody" "hi"))

let test_rpc_latency_override () =
  let net = echo_net () in
  Net.set_latency net ~src:"client" ~dst:"server" 1000;
  Net.set_latency net ~src:"server" ~dst:"client" 3000;
  ignore (Net.rpc net ~src:"client" ~dst:"server" "x");
  Alcotest.(check int) "asymmetric link" 4000 (Net.now net)

let test_tap_drop_and_tamper () =
  let net = echo_net () in
  Net.set_tap net (fun ~dir ~src:_ ~dst:_ _ ->
      match dir with `Request -> Net.Drop | `Response -> Net.Deliver);
  Alcotest.(check bool) "dropped" true (Result.is_error (Net.rpc net ~src:"c" ~dst:"server" "x"));
  Alcotest.(check int) "drop counted" 1 (Metrics.get (Net.metrics net) "net.dropped");
  Net.set_tap net (fun ~dir ~src:_ ~dst:_ payload ->
      match dir with `Request -> Net.Replace ("evil:" ^ payload) | `Response -> Net.Deliver);
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "tampered" "echo:evil:x" resp
  | Error e -> Alcotest.fail e);
  Net.clear_tap net;
  match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "tap cleared" "echo:x" resp
  | Error e -> Alcotest.fail e

let test_tap_eavesdrop () =
  let net = echo_net () in
  let seen = ref [] in
  Net.set_tap net (fun ~dir:_ ~src:_ ~dst:_ payload ->
      seen := payload :: !seen;
      Net.Deliver);
  ignore (Net.rpc net ~src:"c" ~dst:"server" "secret");
  Alcotest.(check (list string)) "observed both directions" [ "echo:secret"; "secret" ] !seen

let test_fresh_material () =
  let net = Net.create ~seed:"a" () in
  let k1 = Net.fresh_key net and k2 = Net.fresh_key net in
  Alcotest.(check int) "key size" 32 (String.length k1);
  Alcotest.(check bool) "keys differ" true (k1 <> k2);
  Alcotest.(check int) "nonce size" 12 (String.length (Net.fresh_nonce net));
  let net' = Net.create ~seed:"a" () in
  Alcotest.(check string) "seeded reproducibility" k1 (Net.fresh_key net')

let test_unregister () =
  let net = echo_net () in
  Net.unregister net ~name:"server";
  Alcotest.(check bool) "gone" true (Result.is_error (Net.rpc net ~src:"c" ~dst:"server" "x"))

let test_metrics_dist () =
  let m = Metrics.create () in
  Alcotest.(check bool) "missing dist" true (Metrics.dist m "lat" = None);
  Metrics.observe m "lat" 10;
  Metrics.observe m "lat" 30;
  Metrics.observe m "lat" 20;
  (match Metrics.dist m "lat" with
  | None -> Alcotest.fail "expected dist"
  | Some d ->
      Alcotest.(check int) "count" 3 d.Metrics.count;
      Alcotest.(check int) "sum" 60 d.Metrics.sum;
      Alcotest.(check int) "max" 30 d.Metrics.max;
      Alcotest.(check (float 0.001)) "mean" 20.0 (Metrics.mean d));
  Metrics.reset m;
  Alcotest.(check bool) "reset clears dists" true (Metrics.dist m "lat" = None)

(* Zero-valued counters must survive into snapshots and show up in diffs —
   a counter that disappears between snapshots is a delta, not nothing. *)
let test_metrics_diff_zeros () =
  let m = Metrics.create () in
  Metrics.add m "x" 5;
  Metrics.add m "y" 0;
  Alcotest.(check (list (pair string int))) "snapshot keeps zeros"
    [ ("x", 5); ("y", 0) ] (Metrics.snapshot m);
  Alcotest.(check (list (pair string int))) "to_list hides zeros" [ ("x", 5) ] (Metrics.to_list m);
  let before = Metrics.snapshot m in
  Metrics.reset m;
  Metrics.add m "z" 2;
  Alcotest.(check (list (pair string int))) "diff over the union of keys"
    [ ("x", -5); ("z", 2) ]
    (List.sort compare (Metrics.diff ~before ~after:(Metrics.snapshot m)))

(* The hazard at the raw transport: the handler's side effect happens, then
   the response is lost, and the client only sees an error. Resolving this
   is Secure_rpc's job (retry + response cache — see test_chaos). *)
let test_dropped_response_after_handler_ran () =
  let net = Net.create ~seed:"hazard" () in
  let handler_runs = ref 0 in
  Net.register net ~name:"server" (fun req ->
      incr handler_runs;
      "done:" ^ req);
  Net.set_tap net (fun ~dir ~src:_ ~dst:_ _ ->
      match dir with `Response -> Net.Drop | `Request -> Net.Deliver);
  (match Net.rpc net ~src:"c" ~dst:"server" "debit" with
  | Ok _ -> Alcotest.fail "response should have been lost"
  | Error e ->
      Alcotest.(check string) "lost after processing" "response dropped" e;
      Alcotest.(check bool) "retryable" true (Net.transient_error e));
  Alcotest.(check int) "side effect happened anyway" 1 !handler_runs

let test_fault_drop_and_duplicate () =
  let net = Net.create ~seed:"faulty" () in
  let handler_runs = ref 0 in
  Net.register net ~name:"server" (fun req ->
      incr handler_runs;
      req);
  Net.install_fault_plan net
    (Sim.Fault.plan ~seed:"faulty" [ Sim.Fault.drop ~dir:`Request 1.0 ]);
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> Alcotest.fail "should drop"
  | Error e -> Alcotest.(check string) "request lost" "request dropped" e);
  Alcotest.(check int) "handler never ran" 0 !handler_runs;
  Alcotest.(check int) "counted" 1 (Metrics.get (Net.metrics net) "fault.dropped");
  (* A certain duplicate: at-least-once delivery runs the handler twice. *)
  Net.install_fault_plan net
    (Sim.Fault.plan ~seed:"faulty" [ Sim.Fault.duplicate ~dir:`Request 1.0 ]);
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "still answers" "x" resp
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "handler ran twice" 2 !handler_runs;
  Alcotest.(check int) "duplicate counted" 1 (Metrics.get (Net.metrics net) "fault.duplicated");
  Net.clear_fault_plan net;
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "plan cleared" 3 !handler_runs

(* Two identically seeded plans over identical workloads behave identically,
   and the plan's DRBG is independent of the environment's. *)
let test_fault_determinism () =
  let run () =
    let net = Net.create ~seed:"env" () in
    Net.register net ~name:"server" (fun req -> req);
    Net.install_fault_plan net
      (Sim.Fault.plan ~seed:"storm"
         [ Sim.Fault.drop 0.4; Sim.Fault.duplicate 0.3; Sim.Fault.jitter 700 ]);
    for i = 1 to 20 do
      ignore (Net.rpc net ~src:"c" ~dst:"server" (string_of_int i))
    done;
    (Metrics.snapshot (Net.metrics net), Net.fresh_key net)
  in
  let m1, k1 = run () and m2, k2 = run () in
  Alcotest.(check (list (pair string int))) "same metrics" m1 m2;
  Alcotest.(check string) "environment DRBG untouched by the plan" k1 k2;
  Alcotest.(check bool) "faults fired" true (List.assoc "fault.dropped" m1 > 0)

(* Down is not gone: a crashed node exists but does not answer, and the
   error is transient — unlike an unknown destination. *)
let test_node_down_vs_unregistered () =
  let net = echo_net () in
  Net.set_down net ~name:"server";
  Alcotest.(check bool) "down" true (Net.is_down net "server");
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> Alcotest.fail "down node answered"
  | Error e ->
      Alcotest.(check string) "node down" "node down" e;
      Alcotest.(check bool) "transient" true (Net.transient_error e));
  Net.set_up net ~name:"server";
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "restarted with state" "echo:x" resp
  | Error e -> Alcotest.fail e);
  Net.unregister net ~name:"server";
  match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> Alcotest.fail "unknown node answered"
  | Error e ->
      Alcotest.(check string) "unknown" "unknown node server" e;
      Alcotest.(check bool) "not transient" false (Net.transient_error e)

let test_crash_window_and_partition () =
  let net = echo_net () in
  Net.install_fault_plan net
    (Sim.Fault.plan ~seed:"win"
       [ Sim.Fault.crash "server" ~at:1_000 ~until:5_000 ();
         Sim.Fault.partition ~a:[ "c2" ] ~b:[ "server" ] ~at:0 () ]);
  (* Before the window: up. (now = 0) *)
  Alcotest.(check bool) "up before window" false (Net.is_down net "server");
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* Inside the window. *)
  Clock.advance (Net.clock net) 1_000;
  Alcotest.(check bool) "down inside window" true (Net.is_down net "server");
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok _ -> Alcotest.fail "crashed node answered"
  | Error e -> Alcotest.(check string) "node down" "node down" e);
  (* After: restarted, state intact. *)
  Clock.advance (Net.clock net) 10_000;
  Alcotest.(check bool) "restarts" false (Net.is_down net "server");
  (match Net.rpc net ~src:"c" ~dst:"server" "x" with
  | Ok resp -> Alcotest.(check string) "handler state survives" "echo:x" resp
  | Error e -> Alcotest.fail e);
  (* The partition never heals ([until] = None) and cuts only c2. *)
  (match Net.rpc net ~src:"c2" ~dst:"server" "x" with
  | Ok _ -> Alcotest.fail "partitioned rpc got through"
  | Error e ->
      Alcotest.(check string) "partitioned" "network partitioned" e;
      Alcotest.(check bool) "transient" true (Net.transient_error e));
  match Net.rpc net ~src:"c1" ~dst:"server" "x" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- retry clock accounting --- *)

(* Pinned elapsed-time math for [Sim.Retry.run] with jitter 0, so every
   advance is deterministic: retries=2, timeout=10ms, backoff 1ms doubling.
   Only attempts followed by a retransmission wait out their timeout; the
   final give-up returns immediately. A regression here means latency
   distributions are charged a timeout nobody waited for. *)
let retry_fixture () =
  let clock = Clock.create () in
  let drbg = Crypto.Drbg.create ~seed:"retry-pin" in
  let m = Metrics.create () in
  let p =
    Sim.Retry.policy ~retries:2 ~timeout_us:10_000
      ~backoff:(Sim.Retry.backoff ~base_us:1_000 ~factor:2.0 ~jitter:0.0 ())
      ()
  in
  (clock, drbg, m, p)

let test_retry_gave_up_elapsed () =
  let clock, drbg, m, p = retry_fixture () in
  (match Sim.Retry.run ~clock ~drbg ~metrics:m p (fun () -> Error "request dropped") with
  | Ok () -> Alcotest.fail "all attempts failed but run returned Ok"
  | Error e -> Alcotest.(check string) "last error" "request dropped" e);
  (* attempt 1: +10_000 timeout +1_000 backoff; attempt 2: +10_000 +2_000;
     attempt 3 gives up without waiting — 23_000, not 33_000. *)
  Alcotest.(check int) "elapsed excludes the give-up timeout" 23_000 (Clock.now clock);
  Alcotest.(check int) "retries counted" 2 (Metrics.get m "rpc.retries");
  Alcotest.(check int) "gave up" 1 (Metrics.get m "rpc.gave_up");
  match Metrics.dist m "rpc.latency_us" with
  | None -> Alcotest.fail "no latency sample"
  | Some d ->
      Alcotest.(check int) "one sample" 1 d.Metrics.count;
      Alcotest.(check int) "latency matches the clock" 23_000 d.Metrics.sum

let test_retry_success_elapsed () =
  let clock, drbg, m, p = retry_fixture () in
  let calls = ref 0 in
  (match
     Sim.Retry.run ~clock ~drbg ~metrics:m p (fun () ->
         incr calls;
         if !calls < 3 then Error "request dropped" else Ok ())
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Two failed attempts wait out timeout+backoff; the succeeding third
     attempt adds nothing. *)
  Alcotest.(check int) "elapsed" 23_000 (Clock.now clock);
  Alcotest.(check int) "no give-up" 0 (Metrics.get m "rpc.gave_up")

let test_retry_first_try_elapsed () =
  let clock, drbg, m, p = retry_fixture () in
  (match Sim.Retry.run ~clock ~drbg ~metrics:m p (fun () -> Ok ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "no waiting" 0 (Clock.now clock);
  Alcotest.(check int) "no retries" 0 (Metrics.get m "rpc.retries")

let () =
  Alcotest.run "sim"
    [ ("clock", [ ("advance", `Quick, test_clock) ]);
      ( "metrics",
        [ ("counters", `Quick, test_metrics);
          ("distributions", `Quick, test_metrics_dist);
          ("diff with zeros", `Quick, test_metrics_diff_zeros) ] );
      ("trace", [ ("audit log", `Quick, test_trace) ]);
      ( "net",
        [ ("rpc", `Quick, test_rpc_basic);
          ("latency override", `Quick, test_rpc_latency_override);
          ("adversary drop/tamper", `Quick, test_tap_drop_and_tamper);
          ("adversary eavesdrop", `Quick, test_tap_eavesdrop);
          ("fresh material", `Quick, test_fresh_material);
          ("unregister", `Quick, test_unregister);
          ("dropped response after handler ran", `Quick, test_dropped_response_after_handler_ran) ] );
      ( "retry",
        [ ("give-up charges no timeout", `Quick, test_retry_gave_up_elapsed);
          ("success after retries", `Quick, test_retry_success_elapsed);
          ("first-try success waits nothing", `Quick, test_retry_first_try_elapsed) ] );
      ( "faults",
        [ ("drop and duplicate", `Quick, test_fault_drop_and_duplicate);
          ("seeded determinism", `Quick, test_fault_determinism);
          ("node down vs unregistered", `Quick, test_node_down_vs_unregistered);
          ("crash window and partition", `Quick, test_crash_window_and_partition) ] ) ]
