(* The core proxy machinery: granting, cascading, presentation, and
   end-server verification for both realizations (paper Sections 2-3, 6). *)

module R = Restriction

let realm = "r"
let p name = Principal.make ~realm name
let alice = p "alice"
let bob = p "bob"
let server = p "server"

let drbg = Crypto.Drbg.create ~seed:"proxy tests"
let hour = 3_600_000_000
let t0 = 0
let t_exp = 10 * hour

(* A fake base credential: the glue normally opens a real ticket; here we
   hand the verifier the base facts directly. *)
let base_key = Crypto.Drbg.generate drbg 32
let base_blob = "opaque-ticket-for-alice"

let open_base ?(base_restrictions = []) () blob =
  if blob = base_blob then
    Ok
      {
        Verifier.base_client = alice;
        base_session_key = base_key;
        base_expires = t_exp;
        base_restrictions;
      }
  else Error "unknown base credentials"

let read_file1 = R.Authorized [ { R.target = "file1"; ops = [ "read" ] } ]

let grant ?(restrictions = [ read_file1 ]) ?(expires = t_exp) () =
  Proxy.grant_conventional ~drbg ~now:t0 ~expires ~grantor:alice ~session_key:base_key
    ~base:base_blob ~restrictions

let req ?(time = 100) ?(operation = "read") ?(target = "file1") ?presenters () =
  R.request ~server ~time ~operation ~target ?presenters ()

let verify_c ?base_restrictions proxy =
  Verifier.verify_conventional ~open_base:(open_base ?base_restrictions ()) ~now:100
    (match proxy.Proxy.flavor with
    | Proxy.Conventional c -> c
    | Proxy.Public_key _ | Proxy.Hybrid _ -> Alcotest.fail "expected conventional")

let prove proxy request =
  Some
    (Presentation.prove ~key:proxy.Proxy.key ~time:100
       ~request_digest:(Presentation.digest_request request))

let authorize ?(max_skew = 300_000_000) verified ~req:r ~proof =
  Verifier.authorize verified ~req:r ~proof ~max_skew

(* --- conventional --- *)

let test_grant_and_verify () =
  let proxy = grant () in
  match verify_c proxy with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "grantor" true (Principal.equal v.Verifier.grantor alice);
      Alcotest.(check int) "chain length" 1 v.Verifier.chain_length;
      Alcotest.(check int) "one restriction" 1 (List.length v.Verifier.restrictions);
      Alcotest.(check int) "expiry" t_exp v.Verifier.expires;
      let r = req () in
      Alcotest.(check bool) "authorized with proof" true
        (authorize v ~req:r ~proof:(prove proxy r) = Ok ())

let test_bearer_requires_possession () =
  let proxy = grant () in
  let v = Result.get_ok (verify_c proxy) in
  let r = req () in
  (match authorize v ~req:r ~proof:None with
  | Error e -> Alcotest.(check string) "no proof" "bearer proxy requires proof of possession" e
  | Ok () -> Alcotest.fail "accepted without possession proof");
  (* A proof made with a different key must fail. *)
  let wrong = Proxy.Sym (Crypto.Drbg.generate drbg 32) in
  let bad = Presentation.prove ~key:wrong ~time:100 ~request_digest:(Presentation.digest_request r) in
  Alcotest.(check bool) "wrong key rejected" true
    (Result.is_error (authorize v ~req:r ~proof:(Some bad)))

let test_proof_binds_request () =
  (* A proof captured for one request cannot authorize a different one. *)
  let proxy = grant ~restrictions:[] () in
  let v = Result.get_ok (verify_c proxy) in
  let r1 = req () in
  let proof = prove proxy r1 in
  let r2 = req ~operation:"delete" () in
  Alcotest.(check bool) "rebinding rejected" true
    (Result.is_error (authorize v ~req:r2 ~proof))

let test_proof_freshness () =
  let proxy = grant ~restrictions:[] () in
  let v = Result.get_ok (verify_c proxy) in
  let r = req () in
  let stale =
    Presentation.prove ~key:proxy.Proxy.key ~time:(-hour)
      ~request_digest:(Presentation.digest_request r)
  in
  match authorize v ~req:r ~proof:(Some stale) with
  | Error e -> Alcotest.(check string) "stale" "proof of possession: stale timestamp" e
  | Ok () -> Alcotest.fail "stale proof accepted"

let test_restriction_enforced () =
  let proxy = grant () in
  let v = Result.get_ok (verify_c proxy) in
  let r = req ~operation:"write" () in
  Alcotest.(check bool) "write refused" true
    (Result.is_error (authorize v ~req:r ~proof:(prove proxy r)))

let test_base_restrictions_apply () =
  (* Restrictions attached to the login credentials themselves (Section 6.3)
     constrain every proxy derived from them. *)
  let proxy = grant ~restrictions:[] () in
  let quota = [ R.Quota ("pages", 1) ] in
  let v = Result.get_ok (verify_c ~base_restrictions:quota proxy) in
  let r = { (req ()) with R.spend = Some ("pages", 5) } in
  Alcotest.(check bool) "base quota enforced" true
    (Result.is_error (authorize v ~req:r ~proof:(prove proxy r)))

let test_cascade_accumulates () =
  let proxy = grant ~restrictions:[ read_file1 ] () in
  let step1 =
    Result.get_ok
      (Proxy.restrict_conventional ~drbg ~now:t0 ~expires:(t_exp / 2)
         ~restrictions:[ R.Quota ("pages", 3) ] proxy)
  in
  let step2 =
    Result.get_ok
      (Proxy.restrict_conventional ~drbg ~now:t0 ~expires:t_exp
         ~restrictions:[ R.Issued_for [ server ] ] step1)
  in
  match verify_c step2 with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check int) "chain length 3" 3 v.Verifier.chain_length;
      Alcotest.(check int) "restrictions union" 3 (List.length v.Verifier.restrictions);
      Alcotest.(check int) "tightest expiry wins" (t_exp / 2) v.Verifier.expires;
      Alcotest.(check int) "serials recorded" 3 (List.length v.Verifier.serials);
      (* The final key is the one that proves possession; earlier keys no
         longer suffice. *)
      let r = req () in
      Alcotest.(check bool) "final key works" true
        (authorize v ~req:r ~proof:(prove step2 r) = Ok ());
      let old_proof =
        Presentation.prove ~key:proxy.Proxy.key ~time:100
          ~request_digest:(Presentation.digest_request r)
      in
      Alcotest.(check bool) "head key no longer proves" true
        (Result.is_error (authorize v ~req:r ~proof:(Some old_proof)))

let test_cascade_cannot_remove () =
  (* Deriving can only add restrictions: the original Authorized stays in
     force no matter what the intermediate writes. *)
  let proxy = grant ~restrictions:[ read_file1 ] () in
  let widened =
    Result.get_ok
      (Proxy.restrict_conventional ~drbg ~now:t0 ~expires:t_exp
         ~restrictions:[ R.Authorized [ { R.target = "file2"; ops = [] } ] ] proxy)
  in
  let v = Result.get_ok (verify_c widened) in
  let r = req ~target:"file2" ~operation:"read" () in
  Alcotest.(check bool) "file2 still refused (intersection, not union)" true
    (Result.is_error (authorize v ~req:r ~proof:(prove widened r)))

let test_wrong_session_key_fails () =
  let stranger_key = Crypto.Drbg.generate drbg 32 in
  let proxy =
    Proxy.grant_conventional ~drbg ~now:t0 ~expires:t_exp ~grantor:alice
      ~session_key:stranger_key ~base:base_blob ~restrictions:[]
  in
  Alcotest.(check bool) "seal under wrong key fails" true (Result.is_error (verify_c proxy))

let test_tampered_cert_fails () =
  let proxy = grant () in
  match proxy.Proxy.flavor with
  | Proxy.Public_key _ | Proxy.Hybrid _ -> Alcotest.fail "conventional expected"
  | Proxy.Conventional chain ->
      let blob = List.hd chain.Proxy.cert_blobs in
      let tampered = Bytes.of_string blob in
      Bytes.set tampered 50 (Char.chr (Char.code (Bytes.get tampered 50) lxor 1));
      let chain' = { chain with Proxy.cert_blobs = [ Bytes.to_string tampered ] } in
      Alcotest.(check bool) "tamper detected" true
        (Result.is_error (Verifier.verify_conventional ~open_base:(open_base ()) ~now:100 chain'))

let test_bare_ticket_rejected () =
  let chain = { Proxy.base = base_blob; cert_blobs = [] } in
  match Verifier.verify_conventional ~open_base:(open_base ()) ~now:100 chain with
  | Error e -> Alcotest.(check bool) "explains" true (e <> "")
  | Ok _ -> Alcotest.fail "bare ticket accepted as proxy"

let test_expired_chain () =
  let proxy = grant ~expires:50 () in
  Alcotest.(check bool) "expired cert fails verification" true
    (Result.is_error (verify_c proxy))

let test_delegate_proxy () =
  let proxy = grant ~restrictions:[ R.Grantee ([ bob ], 1); read_file1 ] () in
  let v = Result.get_ok (verify_c proxy) in
  (* Bob authenticated himself to the end-server: no PoP needed. *)
  let r = req ~presenters:[ bob ] () in
  Alcotest.(check bool) "named delegate passes" true (authorize v ~req:r ~proof:None = Ok ());
  let r_carol = req ~presenters:[ p "carol" ] () in
  Alcotest.(check bool) "stranger refused" true
    (Result.is_error (authorize v ~req:r_carol ~proof:None));
  let r_nobody = req () in
  Alcotest.(check bool) "anonymous refused" true
    (Result.is_error (authorize v ~req:r_nobody ~proof:None))

let test_presentation_excludes_key () =
  let proxy = grant () in
  let wire = Proxy.presentation_to_wire (Proxy.presentation proxy) in
  let bytes = Wire.encode wire in
  (match proxy.Proxy.key with
  | Proxy.Sym k ->
      (* The secret key must not appear in the presented bytes. *)
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "proxy key not on the wire" false (contains bytes k)
  | Proxy.Keypair _ -> Alcotest.fail "conventional expected");
  match Proxy.presentation_of_wire wire with
  | Ok pres ->
      Alcotest.(check bool) "roundtrip verifies" true
        (Result.is_ok
           (Verifier.verify ~open_base:(open_base ()) ~lookup:(fun _ -> None) ~now:100 pres))
  | Error e -> Alcotest.fail e

let test_transfer_roundtrip () =
  let proxy = grant () in
  match Proxy.transfer_of_wire (Proxy.transfer_to_wire proxy) with
  | Error e -> Alcotest.fail e
  | Ok proxy' ->
      let v = Result.get_ok (verify_c proxy') in
      let r = req () in
      Alcotest.(check bool) "transferred key still proves" true
        (authorize v ~req:r ~proof:(prove proxy' r) = Ok ())

(* --- public key --- *)

let pk_bits = 512
let alice_kp = Crypto.Rsa.generate drbg ~bits:512
let bob_kp = Crypto.Rsa.generate drbg ~bits:512

let lookup p =
  if Principal.equal p alice then Some alice_kp.Crypto.Rsa.pub
  else if Principal.equal p bob then Some bob_kp.Crypto.Rsa.pub
  else None

let grant_pk ?(restrictions = [ read_file1 ]) () =
  Proxy.grant_pk ~drbg ~now:t0 ~expires:t_exp ~grantor:alice ~grantor_key:alice_kp
    ~proxy_bits:pk_bits ~restrictions ()

let verify_pk proxy =
  match proxy.Proxy.flavor with
  | Proxy.Public_key certs -> Verifier.verify_pk ~lookup ~now:100 certs
  | Proxy.Conventional _ | Proxy.Hybrid _ -> Alcotest.fail "expected public-key"

let test_pk_grant_verify () =
  let proxy = grant_pk () in
  match verify_pk proxy with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check bool) "grantor" true (Principal.equal v.Verifier.grantor alice);
      let r = req () in
      Alcotest.(check bool) "authorized" true (authorize v ~req:r ~proof:(prove proxy r) = Ok ())

let test_pk_unknown_grantor () =
  let mallory_kp = Crypto.Rsa.generate drbg ~bits:pk_bits in
  let proxy =
    Proxy.grant_pk ~drbg ~now:t0 ~expires:t_exp ~grantor:(p "mallory") ~grantor_key:mallory_kp
      ~proxy_bits:pk_bits ~restrictions:[] ()
  in
  Alcotest.(check bool) "no key binding, no trust" true (Result.is_error (verify_pk proxy))

let test_pk_signature_substitution () =
  (* Mallory signs a certificate claiming alice as grantor: the signature
     check against alice's real key must fail. *)
  let mallory_kp = Crypto.Rsa.generate drbg ~bits:512 in
  let proxy =
    Proxy.grant_pk ~drbg ~now:t0 ~expires:t_exp ~grantor:alice ~grantor_key:mallory_kp
      ~proxy_bits:pk_bits ~restrictions:[] ()
  in
  Alcotest.(check bool) "forged grantor rejected" true (Result.is_error (verify_pk proxy))

let test_pk_bearer_cascade () =
  let proxy = grant_pk () in
  let cascaded =
    Result.get_ok
      (Proxy.restrict_pk ~drbg ~now:t0 ~expires:t_exp ~proxy_bits:pk_bits
         ~restrictions:[ R.Quota ("pages", 2) ] proxy)
  in
  match verify_pk cascaded with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check int) "chain of 2" 2 v.Verifier.chain_length;
      Alcotest.(check int) "restrictions add" 2 (List.length v.Verifier.restrictions);
      let r = req () in
      Alcotest.(check bool) "new key proves" true
        (authorize v ~req:r ~proof:(prove cascaded r) = Ok ());
      let old_proof =
        Presentation.prove ~key:proxy.Proxy.key ~time:100
          ~request_digest:(Presentation.digest_request r)
      in
      Alcotest.(check bool) "old key refused" true
        (Result.is_error (authorize v ~req:r ~proof:(Some old_proof)))

let test_pk_delegate_cascade () =
  (* Alice grants to bob as a named delegate; bob extends the chain signing
     with his own long-term key, leaving an audit trail. *)
  let proxy = grant_pk ~restrictions:[ R.Grantee ([ bob ], 1); read_file1 ] () in
  let extended =
    Result.get_ok
      (Proxy.delegate_pk ~drbg ~now:t0 ~expires:t_exp ~intermediate:bob ~intermediate_key:bob_kp
         ~proxy_bits:pk_bits ~restrictions:[ R.Quota ("pages", 1) ] proxy)
  in
  match verify_pk extended with
  | Error e -> Alcotest.fail e
  | Ok v ->
      Alcotest.(check int) "chain of 2" 2 v.Verifier.chain_length;
      (* The audit trail: bob's name is in the chain's certificates. *)
      (match extended.Proxy.flavor with
      | Proxy.Public_key certs ->
          Alcotest.(check bool) "intermediate identified" true
            (List.exists
               (fun (c : Proxy_cert.pk_cert) ->
                 match c.Proxy_cert.pk_signer with
                 | Proxy_cert.By_principal q -> Principal.equal q bob
                 | _ -> false)
               certs)
      | Proxy.Conventional _ | Proxy.Hybrid _ -> Alcotest.fail "pk expected");
      let r = req () in
      Alcotest.(check bool) "possession of final key suffices with grantee still satisfied" true
        (authorize v ~req:{ r with R.presenters = [ bob ] } ~proof:(prove extended r) = Ok ())

let test_pk_delegate_cascade_requires_naming () =
  (* Carol (not a named grantee) cannot extend a delegate chain under her
     own signature. *)
  let carol_kp = Crypto.Rsa.generate drbg ~bits:512 in
  let carol = p "carol" in
  let proxy = grant_pk ~restrictions:[ R.Grantee ([ bob ], 1) ] () in
  let extended =
    Result.get_ok
      (Proxy.delegate_pk ~drbg ~now:t0 ~expires:t_exp ~intermediate:carol
         ~intermediate_key:carol_kp ~proxy_bits:pk_bits ~restrictions:[] proxy)
  in
  Alcotest.(check bool) "unnamed intermediate rejected" true
    (Result.is_error (verify_pk extended));
  (* Likewise, delegate-extending a bearer chain is meaningless. *)
  let bearer = grant_pk ~restrictions:[] () in
  let bad =
    Result.get_ok
      (Proxy.delegate_pk ~drbg ~now:t0 ~expires:t_exp ~intermediate:bob ~intermediate_key:bob_kp
         ~proxy_bits:pk_bits ~restrictions:[] bearer)
  in
  Alcotest.(check bool) "bearer chain refuses delegate extension" true
    (Result.is_error (verify_pk bad))

let test_pk_cert_wire_roundtrip () =
  let proxy = grant_pk () in
  match proxy.Proxy.flavor with
  | Proxy.Public_key [ cert ] -> (
      match Proxy_cert.pk_cert_of_wire (Proxy_cert.pk_cert_to_wire cert) with
      | Ok cert' ->
          Alcotest.(check bool) "signature survives" true
            (Result.is_ok (Verifier.verify_pk ~lookup ~now:100 [ cert' ]))
      | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "single pk cert expected"

let test_classify () =
  Alcotest.(check bool) "bearer" true (Proxy.classify [ read_file1 ] = `Bearer);
  match Proxy.classify [ R.Grantee ([ alice ], 1); R.Grantee ([ bob ], 1) ] with
  | `Delegate ps -> Alcotest.(check int) "grantees union" 2 (List.length ps)
  | `Bearer -> Alcotest.fail "expected delegate"

(* --- replay cache --- *)

let test_replay_cache () =
  let cache = Replay_cache.create () in
  Alcotest.(check bool) "fresh unseen" false (Replay_cache.seen cache ~now:0 "c1");
  Alcotest.(check bool) "record" true (Replay_cache.record cache ~now:0 ~expires:100 "c1" = Ok ());
  Alcotest.(check bool) "now seen" true (Replay_cache.seen cache ~now:50 "c1");
  Alcotest.(check bool) "double record fails" true
    (Result.is_error (Replay_cache.record cache ~now:50 ~expires:100 "c1"));
  Alcotest.(check bool) "expired forgets" false (Replay_cache.seen cache ~now:101 "c1");
  Alcotest.(check bool) "re-record after expiry" true
    (Replay_cache.record cache ~now:101 ~expires:200 "c1" = Ok ());
  ignore (Replay_cache.record cache ~now:101 ~expires:110 "c2");
  Replay_cache.purge cache ~now:150;
  Alcotest.(check int) "purged" 1 (Replay_cache.size cache)

(* --- properties --- *)

let prop_tamper_any_byte =
  (* Flipping any byte of any conventional certificate blob breaks
     verification. *)
  QCheck.Test.make ~name:"any single-byte tamper is detected" ~count:100
    (QCheck.pair (QCheck.int_bound 10_000) (QCheck.int_bound 255))
    (fun (pos_seed, delta) ->
      QCheck.assume (delta > 0);
      let proxy = grant () in
      match proxy.Proxy.flavor with
      | Proxy.Public_key _ | Proxy.Hybrid _ -> false
      | Proxy.Conventional chain ->
          let blob = List.hd chain.Proxy.cert_blobs in
          let pos = pos_seed mod String.length blob in
          let tampered = Bytes.of_string blob in
          Bytes.set tampered pos (Char.chr (Char.code (Bytes.get tampered pos) lxor delta));
          let chain' = { chain with Proxy.cert_blobs = [ Bytes.to_string tampered ] } in
          Result.is_error
            (Verifier.verify_conventional ~open_base:(open_base ()) ~now:100 chain'))

let prop_cascade_monotone =
  (* However many cascade steps are applied, every original restriction is
     still present in the verified set. *)
  QCheck.Test.make ~name:"cascading never drops restrictions" ~count:30
    (QCheck.int_range 0 5) (fun depth ->
      let original = [ read_file1; R.Quota ("pages", 7) ] in
      let proxy = ref (grant ~restrictions:original ()) in
      for i = 1 to depth do
        proxy :=
          Result.get_ok
            (Proxy.restrict_conventional ~drbg ~now:t0 ~expires:t_exp
               ~restrictions:[ R.Accept_once (string_of_int i) ] !proxy)
      done;
      match verify_c !proxy with
      | Error _ -> false
      | Ok v ->
          List.for_all (fun r -> List.exists (R.equal r) v.Verifier.restrictions) original
          && List.length v.Verifier.restrictions = List.length original + depth)

let gen_restriction =
  (* Random typed restriction sets, including the forward-compatibility
     cases: Unknown tags and server-scoped Limit_restriction wrappers. *)
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [ return (R.Grantee ([ bob ], 1));
              return (R.Issued_for [ server ]);
              map (fun q -> R.Quota ("pages", q)) (int_bound 50);
              map (fun i -> R.Accept_once (string_of_int i)) (int_bound 9);
              return read_file1;
              map (fun i -> R.Unknown ("x-future-" ^ string_of_int i)) (int_bound 3) ]
        in
        if n <= 0 then leaf
        else
          frequency
            [ (5, leaf);
              (1,
               map
                 (fun rs -> R.Limit_restriction ([ server ], rs))
                 (list_size (int_bound 2) (self (n / 2)))) ]))

let gen_rlist = QCheck.Gen.(list_size (int_bound 3) gen_restriction)

let arb_additivity =
  QCheck.make
    ~print:(fun (pk, levels) ->
      Format.asprintf "%s %a"
        (if pk then "pk" else "conv")
        (Format.pp_print_list (Format.pp_print_list R.pp))
        levels)
    QCheck.Gen.(pair bool (list_size (int_range 1 4) gen_rlist))

let prop_restriction_additivity =
  (* Restriction additivity (Section 7.9): however a proxy is re-delegated,
     the verified restriction set of the derived chain contains every
     restriction of every ancestor — as a multiset, for randomly typed
     restriction sets, in both the conventional and the public-key (bearer)
     realization. *)
  QCheck.Test.make ~name:"derived chain restrictions contain the parents'" ~count:60
    arb_additivity (fun (pk, levels) ->
      let granted = List.concat levels in
      let head, cascades = (List.hd levels, List.tl levels) in
      let verified =
        if pk then begin
          let proxy = ref (grant_pk ~restrictions:head ()) in
          List.iter
            (fun rs ->
              proxy :=
                Result.get_ok
                  (Proxy.restrict_pk ~drbg ~now:t0 ~expires:t_exp ~proxy_bits:pk_bits
                     ~restrictions:rs !proxy))
            cascades;
          verify_pk !proxy
        end
        else begin
          let proxy = ref (grant ~restrictions:head ()) in
          List.iter
            (fun rs ->
              proxy :=
                Result.get_ok
                  (Proxy.restrict_conventional ~drbg ~now:t0 ~expires:t_exp ~restrictions:rs
                     !proxy))
            cascades;
          verify_c !proxy
        end
      in
      match verified with
      | Error _ -> false
      | Ok v ->
          let count r l = List.length (List.filter (R.equal r) l) in
          List.for_all
            (fun r -> count r v.Verifier.restrictions >= count r granted)
            granted)

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_tamper_any_byte; prop_cascade_monotone; prop_restriction_additivity ]

let () =
  Alcotest.run "proxy"
    [ ( "conventional",
        [ ("grant and verify", `Quick, test_grant_and_verify);
          ("bearer requires possession", `Quick, test_bearer_requires_possession);
          ("proof binds request", `Quick, test_proof_binds_request);
          ("proof freshness", `Quick, test_proof_freshness);
          ("restriction enforced", `Quick, test_restriction_enforced);
          ("base restrictions apply", `Quick, test_base_restrictions_apply);
          ("cascade accumulates", `Quick, test_cascade_accumulates);
          ("cascade cannot remove", `Quick, test_cascade_cannot_remove);
          ("wrong session key", `Quick, test_wrong_session_key_fails);
          ("tampered cert", `Quick, test_tampered_cert_fails);
          ("bare ticket rejected", `Quick, test_bare_ticket_rejected);
          ("expired chain", `Quick, test_expired_chain);
          ("delegate proxy", `Quick, test_delegate_proxy);
          ("presentation excludes key", `Quick, test_presentation_excludes_key);
          ("transfer roundtrip", `Quick, test_transfer_roundtrip) ] );
      ( "public-key",
        [ ("grant and verify", `Slow, test_pk_grant_verify);
          ("unknown grantor", `Slow, test_pk_unknown_grantor);
          ("signature substitution", `Slow, test_pk_signature_substitution);
          ("bearer cascade", `Slow, test_pk_bearer_cascade);
          ("delegate cascade", `Slow, test_pk_delegate_cascade);
          ("delegate must be named", `Slow, test_pk_delegate_cascade_requires_naming);
          ("cert wire roundtrip", `Slow, test_pk_cert_wire_roundtrip) ] );
      ("classify", [ ("bearer vs delegate", `Quick, test_classify) ]);
      ("replay-cache", [ ("accept-once", `Quick, test_replay_cache) ]);
      ("properties", props) ]
