(* Wire encoding: unit tests plus fuzz-style properties (decode must never
   raise on arbitrary input, and decode . encode = id). *)

let wire = Alcotest.testable Wire.pp Wire.equal

let test_scalars () =
  let roundtrip v =
    match Wire.decode (Wire.encode v) with
    | Ok v' -> Alcotest.check wire "roundtrip" v v'
    | Error e -> Alcotest.fail e
  in
  List.iter roundtrip
    [ Wire.I 0; Wire.I 1; Wire.I (-1); Wire.I max_int; Wire.I min_int;
      Wire.S ""; Wire.S "hello"; Wire.S (String.make 1000 '\xff');
      Wire.L []; Wire.L [ Wire.I 1; Wire.S "x"; Wire.L [ Wire.I 2 ] ] ]

let test_canonical () =
  (* Equal values encode to identical bytes (signatures depend on this). *)
  let v = Wire.L [ Wire.I 42; Wire.S "abc"; Wire.L [ Wire.S "" ] ] in
  Alcotest.(check string) "deterministic" (Wire.encode v) (Wire.encode v)

let test_malformed () =
  let bad input =
    match Wire.decode input with
    | Ok _ -> Alcotest.failf "expected decode failure for %S" input
    | Error _ -> ()
  in
  bad "";
  bad "\x99";
  bad "\x01\x00";
  bad "\x02\x00\x00\x00\x05ab";
  bad "\x02\xff\xff\xff\xff";
  bad "\x03\x00\x00\x00\x02\x01";
  bad (Wire.encode (Wire.I 5) ^ "extra")

let test_truncated_frames () =
  (* Every strict prefix of a valid frame must fail to decode: tags fix the
     payload size, so a cut anywhere leaves an incomplete frame, and the
     decoder must report it rather than crash or accept a partial value. *)
  let v =
    Wire.L
      [ Wire.S "header"; Wire.I 42;
        Wire.L [ Wire.S "nested"; Wire.I (-7); Wire.L [ Wire.S "" ] ];
        Wire.S (String.make 64 'x') ]
  in
  let bytes = Wire.encode v in
  for i = 0 to String.length bytes - 1 do
    match Wire.decode (String.sub bytes 0 i) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncation at byte %d/%d decoded" i (String.length bytes)
  done

let test_oversized_length_prefix () =
  (* Length prefixes claiming more bytes than the input carries must fail
     closed, at the top level and nested inside a list. *)
  let oversized =
    [ "\x02\x7f\xff\xff\xff";  (* string claiming ~2 GiB *)
      "\x02\x00\x00\x01\x00tiny";  (* string claiming 256, carrying 4 *)
      "\x03\x7f\xff\xff\xff" ^ Wire.encode (Wire.I 1);  (* huge list arity *)
      (* a well-formed list wrapping a string whose length overruns it *)
      "\x03\x00\x00\x00\x01\x02\xff\xff\xff\xf0" ]
  in
  List.iter
    (fun input ->
      match Wire.decode input with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "oversized length prefix decoded (%S)" input)
    oversized

let test_depth_bomb () =
  (* A million-deep nested list must be rejected, not crash the decoder
     with a stack overflow. *)
  let depth = 1_000_000 in
  let buf = Buffer.create (6 * depth) in
  for _ = 1 to depth do
    Buffer.add_string buf "\x03\x00\x00\x00\x01"
  done;
  Buffer.add_string buf (Wire.encode (Wire.I 0));
  (match Wire.decode (Buffer.contents buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth bomb decoded");
  (* Reasonable nesting still decodes. *)
  let rec nest n v = if n = 0 then v else nest (n - 1) (Wire.L [ v ]) in
  let deep_ok = nest 15 (Wire.I 7) in
  match Wire.decode (Wire.encode deep_ok) with
  | Ok v -> Alcotest.(check bool) "15 levels fine" true (Wire.equal v deep_ok)
  | Error e -> Alcotest.fail e

let test_accessors () =
  let v = Wire.L [ Wire.I 7; Wire.S "s" ] in
  Alcotest.(check (result int string)) "to_int" (Ok 7) (Result.bind (Wire.field v 0) Wire.to_int);
  Alcotest.(check (result string string)) "to_string" (Ok "s")
    (Result.bind (Wire.field v 1) Wire.to_string);
  Alcotest.(check bool) "missing field" true (Result.is_error (Wire.field v 2));
  Alcotest.(check bool) "wrong type" true (Result.is_error (Wire.to_int (Wire.S "x")));
  Alcotest.(check bool) "field of scalar" true (Result.is_error (Wire.field (Wire.I 1) 0))

let gen_wire =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then oneof [ map (fun i -> Wire.I i) int; map (fun s -> Wire.S s) string_small ]
        else
          frequency
            [ (2, map (fun i -> Wire.I i) int);
              (2, map (fun s -> Wire.S s) string_small);
              (1, map (fun l -> Wire.L l) (list_size (int_bound 5) (self (n / 2)))) ]))

let arb_wire = QCheck.make ~print:(Format.asprintf "%a" Wire.pp) gen_wire

let prop_roundtrip =
  QCheck.Test.make ~name:"decode . encode = id" ~count:500 arb_wire (fun v ->
      match Wire.decode (Wire.encode v) with Ok v' -> Wire.equal v v' | Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:1000 QCheck.string (fun s ->
      match Wire.decode s with Ok _ | Error _ -> true)

let prop_encode_injective =
  QCheck.Test.make ~name:"encode injective" ~count:300 (QCheck.pair arb_wire arb_wire)
    (fun (a, b) -> Wire.equal a b || Wire.encode a <> Wire.encode b)

let props =
  List.map QCheck_alcotest.to_alcotest [ prop_roundtrip; prop_decode_total; prop_encode_injective ]

let () =
  Alcotest.run "wire"
    [ ( "wire",
        [ ("scalar roundtrips", `Quick, test_scalars);
          ("canonical", `Quick, test_canonical);
          ("malformed inputs", `Quick, test_malformed);
          ("truncated frames rejected", `Quick, test_truncated_frames);
          ("oversized length prefixes rejected", `Quick, test_oversized_length_prefix);
          ("depth bomb rejected", `Quick, test_depth_bomb);
          ("accessors", `Quick, test_accessors) ] );
      ("properties", props) ]
