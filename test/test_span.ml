(* Causal tracing spans: collector semantics, cost attribution, envelope
   propagation through Secure_rpc, determinism of the traced F4/F5
   scenarios — plus regression tests for the three bugfixes that ride
   along (trace substring scan, Metrics.diff, Verify_cache refresh). *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let mk_collector ?capacity ?(seed = "span-test") () =
  let clock = Sim.Clock.create () in
  let metrics = Sim.Metrics.create () in
  let t = Sim.Span.create ?capacity ~seed ~clock ~metrics () in
  (t, clock, metrics)

(* ---------------- contains_substring (bugfix regression) ---------------- *)

let test_contains_basic () =
  let has needle hay = Sim.Span.contains_substring ~needle hay in
  check bool "found middle" true (has "cde" "abcdefg");
  check bool "found prefix" true (has "abc" "abcdefg");
  check bool "found suffix" true (has "efg" "abcdefg");
  check bool "missing" false (has "xyz" "abcdefg");
  check bool "empty needle" true (has "" "abcdefg");
  check bool "empty hay" false (has "a" "");
  check bool "both empty" true (has "" "");
  check bool "needle longer" false (has "abcdefgh" "abc");
  check bool "near miss" false (has "abd" "abcabcabd-" |> fun _ -> has "abq" "abcabcabd")

let test_contains_huge () =
  (* The recursive predecessor overflowed the stack at a few hundred KB;
     this must handle a megabyte-scale event without growing the stack. *)
  let hay = String.make 1_000_000 'a' ^ "needle" ^ String.make 1_000 'b' in
  check bool "1MB scan finds suffix needle" true
    (Sim.Span.contains_substring ~needle:"needle" hay);
  check bool "1MB scan clean miss" false
    (Sim.Span.contains_substring ~needle:"needlf" hay);
  (* Worst-case repetitive backtracking stays iterative too. *)
  let hay2 = String.make 500_000 'a' in
  check bool "repetitive near-miss" false
    (Sim.Span.contains_substring ~needle:(String.make 1_000 'a' ^ "b") hay2)

let test_contains_via_trace () =
  (* Trace.find goes through the same scan; a huge recorded event must not
     blow the stack. *)
  let tr = Sim.Trace.create () in
  Sim.Trace.record tr ~time:0 ~actor:"srv" (String.make 800_000 'x' ^ " granted");
  check bool "find in huge event" true
    (Sim.Trace.find tr ~actor:"srv" ~substring:"granted" <> None);
  check bool "miss in huge event" true
    (Sim.Trace.find tr ~actor:"srv" ~substring:"denied" = None)

(* ---------------- Metrics.diff (bugfix regression) ---------------- *)

let test_metrics_diff () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.add m "a" 3;
  Sim.Metrics.add m "b" 5;
  let before = Sim.Metrics.snapshot m in
  Sim.Metrics.add m "a" 2;
  Sim.Metrics.add m "c" 7;
  let after = Sim.Metrics.snapshot m in
  Alcotest.(check (list (pair string int)))
    "delta has only changed counters, sorted"
    [ ("a", 2); ("c", 7) ]
    (Sim.Metrics.diff ~before ~after);
  Alcotest.(check (list (pair string int)))
    "reverse diff is negative"
    [ ("a", -2); ("c", -7) ]
    (Sim.Metrics.diff ~before:after ~after:before);
  Alcotest.(check (list (pair string int)))
    "identical snapshots diff to nothing" []
    (Sim.Metrics.diff ~before:after ~after)

let test_metrics_diff_large () =
  (* The old implementation was O(n^2) via List.assoc_opt; this mostly
     guards the semantics while the hashtable keeps it linear. *)
  let m = Sim.Metrics.create () in
  for i = 0 to 4_999 do
    Sim.Metrics.add m (Printf.sprintf "k%04d" i) (i + 1)
  done;
  let before = Sim.Metrics.snapshot m in
  for i = 0 to 4_999 do
    if i mod 7 = 0 then Sim.Metrics.add m (Printf.sprintf "k%04d" i) 1
  done;
  let d = Sim.Metrics.diff ~before ~after:(Sim.Metrics.snapshot m) in
  check int "one delta per touched counter" 715 (List.length d);
  check bool "all deltas are 1" true (List.for_all (fun (_, v) -> v = 1) d);
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) d in
  check bool "output sorted" true (d = sorted)

(* ---------------- Verify_cache refresh (bugfix regression) -------------- *)

let test_verify_cache_refresh_survives () =
  (* A hot, repeatedly refreshed entry must not be the first evicted: the
     bug left the refreshed entry's original queue position in place, so
     eviction removed the hottest key first. *)
  let c = Verify_cache.create ~capacity:4 () in
  Verify_cache.record c ~now:0 "hot";
  Verify_cache.record c ~now:1 "b";
  Verify_cache.record c ~now:2 "c";
  Verify_cache.record c ~now:3 "d";
  Verify_cache.record c ~now:4 "hot" (* refresh: now newest, b is oldest *);
  Verify_cache.record c ~now:5 "e" (* evicts b, not hot *);
  check bool "refreshed entry survives" true (Verify_cache.check c ~now:6 "hot");
  check bool "oldest unrefreshed evicted" false (Verify_cache.check c ~now:6 "b");
  check bool "c still cached" true (Verify_cache.check c ~now:6 "c")

let test_verify_cache_refresh_churn () =
  (* Under full-capacity churn with periodic refreshes, the hot key always
     survives — even when refreshes land at an unchanged virtual timestamp
     (the sequence number, not the clock, must break the tie). *)
  let c = Verify_cache.create ~capacity:4 () in
  Verify_cache.record c ~now:0 "hot";
  for i = 1 to 40 do
    Verify_cache.record c ~now:i (Printf.sprintf "churn%d" i);
    if i mod 2 = 0 then Verify_cache.record c ~now:i "hot";
    check bool (Printf.sprintf "hot alive after %d inserts" i) true
      (Verify_cache.check c ~now:i "hot")
  done;
  check int "size stays bounded" 4 (Verify_cache.size c);
  let s = Verify_cache.stats c in
  check bool "evictions happened" true (s.Verify_cache.evictions > 30)

(* ---------------- Span collector unit semantics ---------------- *)

let test_span_nesting () =
  let t, clock, metrics = mk_collector () in
  let sp = Some t in
  Sim.Span.with_span sp ~actor:"alice" ~kind:"outer" (fun () ->
      Sim.Metrics.incr metrics "work.outer";
      Sim.Clock.advance clock 10;
      Sim.Span.with_span sp ~actor:"bob" ~kind:"inner" (fun () ->
          Sim.Metrics.incr metrics "work.inner";
          Sim.Metrics.incr metrics "work.inner";
          Sim.Clock.advance clock 5);
      Sim.Span.add_attr sp "verdict" "ok");
  match Sim.Span.spans t with
  | [ inner; outer ] ->
      check string "child kind" "inner" inner.Sim.Span.sp_kind;
      check string "parent kind" "outer" outer.Sim.Span.sp_kind;
      check bool "same trace" true (inner.Sim.Span.sp_trace = outer.Sim.Span.sp_trace);
      check bool "parentage" true (inner.Sim.Span.sp_parent = Some outer.Sim.Span.sp_id);
      check bool "root has no parent" true (outer.Sim.Span.sp_parent = None);
      check bool "ids distinct" true (inner.Sim.Span.sp_id <> outer.Sim.Span.sp_id);
      Alcotest.(check (list (pair string int)))
        "child self cost" [ ("work.inner", 2) ] inner.Sim.Span.sp_costs;
      Alcotest.(check (list (pair string int)))
        "parent self cost excludes child" [ ("work.outer", 1) ] outer.Sim.Span.sp_costs;
      check int "child interval" 5 (inner.Sim.Span.sp_end - inner.Sim.Span.sp_start);
      check int "parent interval" 15 (outer.Sim.Span.sp_end - outer.Sim.Span.sp_start);
      Alcotest.(check (list (pair string string)))
        "attr attached to open span" [ ("verdict", "ok") ] outer.Sim.Span.sp_attrs
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_determinism () =
  let run () =
    let t, clock, metrics = mk_collector ~seed:"det" () in
    let sp = Some t in
    for i = 1 to 3 do
      Sim.Span.with_span sp ~actor:"a" ~kind:"request"
        ~attrs:[ ("n", string_of_int i) ]
        (fun () ->
          Sim.Metrics.incr metrics "tick";
          Sim.Clock.advance clock 7;
          Sim.Span.with_span sp ~actor:"b" ~kind:"leaf" (fun () ->
              Sim.Clock.advance clock 1))
    done;
    Sim.Span.to_jsonl (Sim.Span.spans t)
  in
  let a = run () and b = run () in
  check string "same seed, byte-identical export" a b;
  let t2, clock2, metrics2 = mk_collector ~seed:"other" () in
  ignore clock2;
  ignore metrics2;
  Sim.Span.with_span (Some t2) ~actor:"a" ~kind:"request" (fun () -> ());
  let id_of line =
    (* second field of the fixed key order is the span id *)
    String.length line > 0
  in
  ignore id_of;
  check bool "different seed, different ids" true (Sim.Span.to_jsonl (Sim.Span.spans t2) <> a)

let test_span_ring_bound () =
  let t, _, _ = mk_collector ~capacity:4 () in
  for i = 1 to 10 do
    Sim.Span.with_span (Some t) ~actor:"a" ~kind:"k"
      ~attrs:[ ("n", string_of_int i) ]
      (fun () -> ())
  done;
  let kept = Sim.Span.spans t in
  check int "ring keeps capacity" 4 (List.length kept);
  check int "dropped counted" 6 (Sim.Span.dropped t);
  (* Oldest dropped: the survivors are 7..10. *)
  let ns = List.map (fun s -> List.assoc "n" s.Sim.Span.sp_attrs) kept in
  Alcotest.(check (list string)) "oldest evicted first" [ "7"; "8"; "9"; "10" ] ns

let test_span_exception () =
  let t, _, metrics = mk_collector () in
  (try
     Sim.Span.with_span (Some t) ~actor:"a" ~kind:"boom" (fun () ->
         Sim.Metrics.incr metrics "pre";
         failwith "kaput")
   with Failure _ -> ());
  match Sim.Span.spans t with
  | [ s ] ->
      check bool "error attr recorded" true
        (List.mem_assoc "error" s.Sim.Span.sp_attrs);
      Alcotest.(check (list (pair string int)))
        "cost up to the raise captured" [ ("pre", 1) ] s.Sim.Span.sp_costs
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

let test_span_disabled_noop () =
  let v = Sim.Span.with_span None ~actor:"a" ~kind:"k" (fun () -> 42) in
  check int "disabled collector runs bare" 42 v;
  Sim.Span.add_attr None "k" "v" (* must not raise *)

(* ---------------- Secure_rpc envelope propagation ---------------- *)

let test_rpc_propagation () =
  let w = World.create ~seed:"prop" () in
  let net = w.World.net in
  let echo_name, echo_key = World.enrol w "echo" in
  Secure_rpc.serve net ~me:echo_name ~my_key:echo_key (fun _ctx payload -> Ok payload);
  let tgt = World.login w (fst (World.enrol w "carol")) in
  let creds = World.credentials_for w ~tgt echo_name in
  (* Untraced call works as before. *)
  (match Secure_rpc.call net ~creds (Wire.S "plain") with
  | Ok (Wire.S "plain") -> ()
  | Ok _ -> Alcotest.fail "bad echo"
  | Error e -> Alcotest.fail e);
  Sim.Net.enable_tracing net;
  let collector = Option.get (Sim.Net.spans net) in
  Sim.Span.with_span (Sim.Net.spans net) ~actor:"carol" ~kind:"request" (fun () ->
      match Secure_rpc.call net ~creds (Wire.S "traced") with
      | Ok (Wire.S "traced") -> ()
      | Ok _ -> Alcotest.fail "bad echo"
      | Error e -> Alcotest.fail e);
  let spans = Sim.Span.spans collector in
  let find kind = List.find (fun s -> s.Sim.Span.sp_kind = kind) spans in
  let root = find "request" in
  let call = find "rpc.call" in
  let attempt = find "rpc.attempt" in
  let serve = find "rpc.serve" in
  check bool "one trace end to end" true
    (List.for_all (fun s -> s.Sim.Span.sp_trace = root.Sim.Span.sp_trace) spans);
  check bool "call under root" true (call.Sim.Span.sp_parent = Some root.Sim.Span.sp_id);
  check bool "attempt under call" true
    (attempt.Sim.Span.sp_parent = Some call.Sim.Span.sp_id);
  (* The envelope pins the serve span to the call span: retransmitted
     attempts reuse the same bytes, so the call — not the attempt — is the
     stable causal parent on the server side. *)
  check bool "serve parented on call via envelope" true
    (serve.Sim.Span.sp_parent = Some call.Sim.Span.sp_id);
  check bool "server actor recorded" true
    (Sim.Span.contains_substring ~needle:"echo" serve.Sim.Span.sp_actor)

(* ---------------- Traced scenarios ---------------- *)

let f4_plan seed = Sim.Fault.plan ~seed [ Sim.Fault.jitter 200 ]

let test_f4_invariants () =
  let o = Tracing.run_f4 ~seed:"f4-inv" ~requests:3 ~depth:3 () in
  check int "all requests succeed" o.Tracing.requests o.Tracing.ok;
  check int "no spans dropped" 0 o.Tracing.dropped;
  let spans = o.Tracing.spans in
  check bool "cascade nests >= 4 deep" true (Sim.Span.max_depth spans >= 4);
  check bool ">= 3 actors involved" true (List.length (Sim.Span.actors spans) >= 3);
  let kinds = List.map (fun s -> s.Sim.Span.sp_kind) spans in
  List.iter
    (fun k -> check bool ("kind present: " ^ k) true (List.mem k kinds))
    [ "request"; "rpc.call"; "rpc.attempt"; "rpc.serve"; "kdc.tgs"; "kdc.serve";
      "guard.decide"; "verify.cert"; "resolver.lookup" ];
  (* Depth-3 cascade: 3 verify.cert children per decision, 3 requests. *)
  let count k = List.length (List.filter (fun s -> s.Sim.Span.sp_kind = k) spans) in
  check int "one guard decision per request" 3 (count "guard.decide");
  check int "one cert span per cascade link" 9 (count "verify.cert");
  (* The injected first-request drop forces a retry: some rpc.call has two
     attempt children. *)
  let attempts_of call =
    List.filter
      (fun s ->
        s.Sim.Span.sp_kind = "rpc.attempt"
        && s.Sim.Span.sp_parent = Some call.Sim.Span.sp_id)
      spans
  in
  let calls = List.filter (fun s -> s.Sim.Span.sp_kind = "rpc.call") spans in
  check bool "a dropped request shows a retry child" true
    (List.exists (fun c -> List.length (attempts_of c) >= 2) calls);
  (* Every span carries some counted cost in its subtree, and self costs
     sum exactly to the global metrics diff over the traced window. *)
  Alcotest.(check (list (pair string int)))
    "span self costs sum to the global delta" o.Tracing.delta
    (Sim.Span.cost_total spans);
  check bool "delta is non-trivial" true (List.length o.Tracing.delta > 5)

let test_f4_deterministic () =
  let export () =
    let o =
      Tracing.run_f4 ~seed:"f4-det" ~requests:2 ~plan:(f4_plan "chaos") ()
    in
    Sim.Span.to_jsonl o.Tracing.spans
  in
  let a = export () and b = export () in
  check bool "exports non-empty" true (String.length a > 1_000);
  check string "same seed + same fault plan => byte-identical JSONL" a b

let test_f4_chrome_valid () =
  let o = Tracing.run_f4 ~seed:"f4-chrome" ~requests:1 () in
  let json = Sim.Span.to_chrome_trace o.Tracing.spans in
  (match Benchout.valid_json json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace not valid JSON: %s" e);
  check bool "has trace-event envelope" true
    (Sim.Span.contains_substring ~needle:"\"traceEvents\"" json);
  check bool "has complete events" true
    (Sim.Span.contains_substring ~needle:{|"ph":"X"|} json);
  check bool "has thread names" true
    (Sim.Span.contains_substring ~needle:"thread_name" json);
  check bool "costs exported" true
    (Sim.Span.contains_substring ~needle:"cost.net.messages" json)

let test_f5_invariants () =
  let o = Tracing.run_f5 ~seed:"f5-inv" ~requests:2 () in
  check int "all deposits clear" o.Tracing.requests o.Tracing.ok;
  let spans = o.Tracing.spans in
  let kinds = List.map (fun s -> s.Sim.Span.sp_kind) spans in
  List.iter
    (fun k -> check bool ("kind present: " ^ k) true (List.mem k kinds))
    [ "acct.deposit"; "acct.forward"; "acct.collect"; "acct.debit" ];
  check bool "banks + client + kdc" true (List.length (Sim.Span.actors spans) >= 4);
  Alcotest.(check (list (pair string int)))
    "attribution exact for the accounting path" o.Tracing.delta
    (Sim.Span.cost_total spans)

let () =
  Alcotest.run "span"
    [
      ( "scan",
        [
          Alcotest.test_case "basics" `Quick test_contains_basic;
          Alcotest.test_case "megabyte event" `Quick test_contains_huge;
          Alcotest.test_case "via Trace.find" `Quick test_contains_via_trace;
        ] );
      ( "metrics-diff",
        [
          Alcotest.test_case "pinned semantics" `Quick test_metrics_diff;
          Alcotest.test_case "many counters" `Quick test_metrics_diff_large;
        ] );
      ( "verify-cache",
        [
          Alcotest.test_case "refresh survives eviction" `Quick
            test_verify_cache_refresh_survives;
          Alcotest.test_case "hot key under churn" `Quick test_verify_cache_refresh_churn;
        ] );
      ( "collector",
        [
          Alcotest.test_case "nesting and self cost" `Quick test_span_nesting;
          Alcotest.test_case "deterministic ids" `Quick test_span_determinism;
          Alcotest.test_case "bounded ring" `Quick test_span_ring_bound;
          Alcotest.test_case "exception closes span" `Quick test_span_exception;
          Alcotest.test_case "disabled is a no-op" `Quick test_span_disabled_noop;
        ] );
      ( "rpc",
        [ Alcotest.test_case "envelope propagation" `Quick test_rpc_propagation ] );
      ( "scenarios",
        [
          Alcotest.test_case "f4 causal invariants" `Quick test_f4_invariants;
          Alcotest.test_case "f4 determinism" `Quick test_f4_deterministic;
          Alcotest.test_case "f4 chrome export" `Quick test_f4_chrome_valid;
          Alcotest.test_case "f5 accounting spans" `Quick test_f5_invariants;
        ] );
    ]
