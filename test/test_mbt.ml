(* The model-based conformance harness, tested four ways:

   - hand-written programs whose model outcomes are known, each also run
     through the full conformance check (stack, cache differential, model);
   - a clean generated campaign that must find no disagreement;
   - one campaign per injected stack mutation that MUST find a disagreement
     and shrink it to a short repro (the harness can kill mutants);
   - the committed repro and fuzz corpora, which must replay as recorded. *)

module P = Mbt.Program

let seed = "test-mbt"

let conformance ?mutation name prog =
  match Mbt.Runner.check ?mutation ~seed prog with
  | None -> ()
  | Some f ->
      Alcotest.failf "%s: unexpected disagreement (%s): %s" name
        (Mbt.Runner.kind_name f.Mbt.Runner.f_kind)
        f.Mbt.Runner.f_detail

let outcome = Alcotest.testable
    (fun fmt -> function
      | P.O_done -> Format.fprintf fmt "done"
      | P.O_skip -> Format.fprintf fmt "skip"
      | P.O_ok b -> Format.fprintf fmt "ok=%b" b
      | P.O_group (a, b) -> Format.fprintf fmt "group=%b,%b" a b)
    ( = )

(* A known-outcome program checks the model directly AND the model against
   the stack, so each scenario is pinned twice. *)
let scenario name prog ~outcomes ~balances =
  let r = Mbt.Model.run prog in
  Alcotest.(check (list outcome)) (name ^ ": outcomes") outcomes r.P.outcomes;
  Alcotest.(check (array int)) (name ^ ": balances") balances r.P.balances;
  conformance name prog

let test_owner_and_revocation () =
  scenario "owner reads own file"
    [ P.Present { slot = 0; presenter = 1; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_ok true ] ~balances:[| 100; 100; 100 |];
  scenario "stranger denied without a proxy"
    [ P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_ok false ] ~balances:[| 100; 100; 100 |];
  scenario "proxy grants, revocation of the ACL entry kills it"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [] };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Revoke { owner = 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_done; P.O_ok false ]
    ~balances:[| 100; 100; 100 |]

let test_expiry_and_restrictions () =
  scenario "expired grant never verifies"
    [ P.Grant { grantor = 1; flavor = P.Pk; expired = true; rs = [] };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok false ] ~balances:[| 100; 100; 100 |];
  scenario "authorized restriction pins target and operation"
    [ P.Grant
        { grantor = 1; flavor = P.Hybrid; expired = false;
          rs = [ P.R_authorized [ (P.File 1, [ "read" ]) ] ] };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_ok false ]
    ~balances:[| 100; 100; 100 |];
  scenario "unknown restriction fails closed"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ P.R_unknown ] };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok false ] ~balances:[| 100; 100; 100 |]

let test_accept_once () =
  scenario "accept-once consumed only when the proxy contributes"
    [ P.Grant
        { grantor = 1; flavor = P.Conv; expired = false; rs = [ P.R_accept_once 7 ] };
      (* The owner presenting their own file does not use the proxy, so the
         accept-once id survives. *)
      P.Present { slot = 0; presenter = 1; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_ok true; P.O_ok false ]
    ~balances:[| 100; 100; 100 |]

let test_checks_and_deposits () =
  scenario "check clears once, then bounces on re-deposit"
    [ P.Write_check { payor = 0; payee = 1; amount = 30 };
      P.Deposit { cslot = 0; depositor = 1 };
      P.Deposit { cslot = 0; depositor = 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_ok false ]
    ~balances:[| 70; 130; 100 |];
  scenario "only the payee can deposit a check"
    [ P.Write_check { payor = 0; payee = 1; amount = 30 };
      P.Deposit { cslot = 0; depositor = 2 } ]
    ~outcomes:[ P.O_done; P.O_ok false ]
    ~balances:[| 100; 100; 100 |];
  scenario "insufficient funds bounce, but the check number is consumed"
    [ P.Write_check { payor = 0; payee = 1; amount = 150 };
      P.Deposit { cslot = 0; depositor = 1 };
      P.Deposit { cslot = 0; depositor = 1 } ]
    ~outcomes:[ P.O_done; P.O_ok false; P.O_ok false ]
    ~balances:[| 100; 100; 100 |]

let test_group_membership () =
  scenario "membership proxies track the roster"
    [ P.Assert_group { member = 0 };
      P.Add_member { member = 0 };
      P.Assert_group { member = 0 };
      P.Remove_member { member = 0 };
      P.Assert_group { member = 0 } ]
    ~outcomes:
      [ P.O_group (false, false); P.O_done; P.O_group (true, true); P.O_done;
        P.O_group (false, false) ]
    ~balances:[| 100; 100; 100 |]

let test_sequence_steps () =
  let seq = P.R_sequence [ ("read", P.File 1); ("write", P.File 1) ] in
  scenario "in-order sequence runs once, then is exhausted"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ seq ] };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_ok true; P.O_ok false ]
    ~balances:[| 100; 100; 100 |];
  scenario "out-of-order step denied, then the in-order run completes"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ seq ] };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok false; P.O_ok true; P.O_ok true ]
    ~balances:[| 100; 100; 100 |];
  scenario "owner presentations do not consume sequence progress"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ seq ] };
      P.Present { slot = 0; presenter = 1; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_ok true; P.O_ok true ]
    ~balances:[| 100; 100; 100 |];
  scenario "cascades share the grant's progress counter"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ seq ] };
      P.Derive
        { slot = 0; expired = false;
          rs = [ P.R_authorized [ (P.File 1, [ "read"; "write" ]) ] ];
          delegate = None };
      P.Present { slot = 1; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_done; P.O_ok true; P.O_ok false; P.O_ok true ]
    ~balances:[| 100; 100; 100 |];
  scenario "a tightened prefix clamps the delegate, not the original"
    [ P.Grant { grantor = 1; flavor = P.Conv; expired = false; rs = [ seq ] };
      P.Derive
        { slot = 0; expired = false;
          rs = [ P.R_sequence [ ("read", P.File 1) ] ]; delegate = None };
      P.Present { slot = 1; presenter = 0; verb = `Read; target = P.File 1 };
      P.Present { slot = 1; presenter = 0; verb = `Write; target = P.File 1 };
      P.Present { slot = 0; presenter = 0; verb = `Write; target = P.File 1 } ]
    ~outcomes:[ P.O_done; P.O_done; P.O_ok true; P.O_ok false; P.O_ok true ]
    ~balances:[| 100; 100; 100 |]

(* --- generated campaigns --- *)

let test_clean_campaign () =
  (* Every program runs cache-on, cache-off and through the model; any
     divergence anywhere fails.  This is both the conformance check and the
     cache-coherence differential. *)
  let finding, stats =
    Mbt.Runner.campaign ~seeds:[ "alc-a"; "alc-b" ] ~per_seed:15 ()
  in
  (match finding with
  | None -> ()
  | Some f -> Alcotest.failf "disagreement: %s" f.Mbt.Runner.f_detail);
  Alcotest.(check int) "programs run" 30 stats.Mbt.Runner.programs;
  Alcotest.(check bool) "ops generated" true (stats.Mbt.Runner.ops > 100)

let kill_and_shrink mutation () =
  (* Seeds probed to kill every mutation early; the budget is headroom. *)
  let finding, _ =
    Mbt.Runner.campaign ~mutation ~seeds:[ "mk-5-0"; "mk-3-0" ] ~per_seed:100 ()
  in
  match finding with
  | None ->
      Alcotest.failf "injected mutation %s survived the campaign"
        (Mbt.Exec.mutation_name mutation)
  | Some f ->
      let f', _ = Mbt.Runner.shrink ~mutation ~budget:200 f in
      let len = List.length f'.Mbt.Runner.f_program in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk repro is short (%d ops)" len)
        true (len <= 8);
      (* The shrunk program still disagrees under the mutation, and agrees
         without it — the finding is the mutation's fault, not the
         harness's. *)
      Alcotest.(check bool) "still failing" true
        (Mbt.Runner.check ~mutation ~seed:f'.Mbt.Runner.f_seed f'.Mbt.Runner.f_program
         <> None);
      conformance "shrunk program on the unmutated stack"
        f'.Mbt.Runner.f_program

(* --- program wire codec --- *)

let test_program_roundtrip () =
  let g = Mbt.Gen.create ~seed:"codec" in
  for _ = 1 to 25 do
    let prog = Mbt.Gen.program g in
    match Wire.decode (Wire.encode (P.to_wire prog)) with
    | Error e -> Alcotest.fail e
    | Ok w -> (
        match P.of_wire w with
        | Error e -> Alcotest.fail e
        | Ok prog' -> Alcotest.(check bool) "program roundtrip" true (prog = prog'))
  done;
  (* Hostile inputs fail closed. *)
  Alcotest.(check bool) "wrong magic refused" true
    (Result.is_error (P.of_wire (Wire.L [ Wire.S "not-a-program"; Wire.I 1; Wire.L [] ])));
  Alcotest.(check bool) "scalar refused" true (Result.is_error (P.of_wire (Wire.I 7)))

(* --- committed corpora --- *)

let repro_mutation path =
  let prefix = "# found with injected mutation: " in
  let ic = open_in path in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       let pl = String.length prefix in
       if String.length line > pl && String.sub line 0 pl = prefix then
         found := Mbt.Exec.mutation_of_name (String.sub line pl (String.length line - pl))
     done
   with End_of_file -> ());
  close_in ic;
  !found

let test_repro_corpus () =
  let dir = "repros" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".repro")
    |> List.sort compare
  in
  Alcotest.(check bool) "repros committed" true (List.length files >= 3);
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let mutation = repro_mutation path in
      Alcotest.(check bool) (f ^ ": records its mutation") true (mutation <> None);
      match Mbt.Runner.replay ?mutation path with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok (Some _) -> ()  (* the recorded bug is still detected *)
      | Ok None -> Alcotest.failf "%s: injected mutation no longer detected" f)
    files

let test_fuzz_smoke () =
  let s = Mbt.Fuzz.run ~seed:"alc-fuzz" ~iters:400 in
  List.iter
    (fun (c : Mbt.Fuzz.crash) ->
      Printf.printf "CRASH seed=%s stage=%s: %s\n" c.Mbt.Fuzz.c_seed c.Mbt.Fuzz.c_stage
        c.Mbt.Fuzz.c_exn)
    s.Mbt.Fuzz.crashes;
  Alcotest.(check int) "no decoder crashes" 0 (List.length s.Mbt.Fuzz.crashes);
  Alcotest.(check int) "all mutants tried" 400 s.Mbt.Fuzz.iterations

let test_fuzz_corpus () =
  let r = Mbt.Fuzz.replay_corpus ~dir:"fuzz_corpus" in
  List.iter (fun (f, e) -> Printf.printf "FAIL %s: %s\n" f e) r.Mbt.Fuzz.failures;
  Alcotest.(check bool) "corpus committed" true (r.Mbt.Fuzz.files >= 40);
  Alcotest.(check int) "corpus replays clean" 0 (List.length r.Mbt.Fuzz.failures)

let () =
  Alcotest.run "mbt"
    [ ( "model scenarios",
        [ ("owner and revocation", `Quick, test_owner_and_revocation);
          ("expiry and restrictions", `Quick, test_expiry_and_restrictions);
          ("accept-once contribution", `Quick, test_accept_once);
          ("checks and deposits", `Quick, test_checks_and_deposits);
          ("group membership", `Quick, test_group_membership);
          ("sequence steps", `Quick, test_sequence_steps) ] );
      ( "campaigns",
        [ ("clean campaign agrees", `Slow, test_clean_campaign);
          ( "kills drop-derived-restriction",
            `Slow,
            kill_and_shrink Mbt.Exec.Drop_derived_restriction );
          ("kills ignore-expiry", `Slow, kill_and_shrink Mbt.Exec.Ignore_expiry);
          ("kills misbind-proof", `Slow, kill_and_shrink Mbt.Exec.Misbind_proof);
          ("kills ignore-bulletin", `Slow, kill_and_shrink Mbt.Exec.Ignore_bulletin);
          ( "kills ignore-sequence-order",
            `Slow,
            kill_and_shrink Mbt.Exec.Ignore_sequence_order );
          ( "kills reset-progress-on-retry",
            `Slow,
            kill_and_shrink Mbt.Exec.Reset_progress_on_retry ) ] );
      ( "codec and corpora",
        [ ("program wire roundtrip", `Quick, test_program_roundtrip);
          ("committed repros replay", `Slow, test_repro_corpus);
          ("fuzz smoke", `Quick, test_fuzz_smoke);
          ("fuzz corpus replays", `Quick, test_fuzz_corpus) ] ) ]
