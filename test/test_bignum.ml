(* Unit and property tests for the arbitrary-precision substrate. The
   reference implementation for property tests is native [int] arithmetic on
   small values plus algebraic identities on large ones. *)

module N = Bignum.Nat

let nat = Alcotest.testable N.pp N.equal

(* A deterministic byte source for the prime tests. *)
let test_rand =
  let state = ref 0x12345678 in
  fun n ->
    String.init n (fun _ ->
        (* xorshift *)
        let x = !state in
        let x = x lxor (x lsl 13) in
        let x = x lxor (x lsr 7) in
        let x = x lxor (x lsl 17) in
        state := x land max_int;
        Char.chr (x land 0xff))

let big_a = N.of_string "123456789012345678901234567890123456789"
let big_b = N.of_string "987654321098765432109876543210"

let test_of_to_int () =
  Alcotest.(check (option int)) "roundtrip 0" (Some 0) N.(to_int_opt zero);
  Alcotest.(check (option int)) "roundtrip 42" (Some 42) N.(to_int_opt (of_int 42));
  Alcotest.(check (option int))
    "roundtrip large" (Some 123_456_789_012_345)
    N.(to_int_opt (of_int 123_456_789_012_345));
  Alcotest.(check (option int)) "too big" None (N.to_int_opt big_a)

let test_decimal_roundtrip () =
  Alcotest.(check string) "string" "123456789012345678901234567890123456789" (N.to_string big_a);
  Alcotest.(check string) "zero" "0" N.(to_string zero);
  Alcotest.check nat "parse" big_a (N.of_string (N.to_string big_a))

let test_add_sub () =
  Alcotest.check nat "a+b-b=a" big_a N.(sub (add big_a big_b) big_b);
  Alcotest.check nat "a-a=0" N.zero (N.sub big_a big_a);
  Alcotest.(check_raises "underflow" N.Underflow (fun () -> ignore (N.sub big_b big_a)))

let test_mul_div () =
  let q, r = N.divmod big_a big_b in
  Alcotest.check nat "divmod reconstruct" big_a N.(add (mul q big_b) r);
  Alcotest.(check bool) "r < b" true (N.compare r big_b < 0);
  Alcotest.check nat "(a*b)/b = a" big_a N.(div (mul big_a big_b) big_b);
  Alcotest.check nat "mod of multiple" N.zero N.(rem (mul big_a big_b) big_a);
  Alcotest.(check_raises "div by zero" Division_by_zero (fun () -> ignore (N.div big_a N.zero)))

let test_known_quotient () =
  (* 10^38 / 10^19 = 10^19, computed independently. *)
  let p38 = N.of_string (String.concat "" [ "1"; String.make 38 '0' ]) in
  let p19 = N.of_string (String.concat "" [ "1"; String.make 19 '0' ]) in
  Alcotest.check nat "10^38/10^19" p19 (N.div p38 p19);
  Alcotest.check nat "exact" N.zero (N.rem p38 p19)

let test_shifts () =
  Alcotest.check nat "shl 0" big_a (N.shift_left big_a 0);
  Alcotest.check nat "shl/shr" big_a N.(shift_right (shift_left big_a 131) 131);
  Alcotest.check nat "shl = *2^k" N.(mul big_a (of_int 1024)) (N.shift_left big_a 10);
  Alcotest.check nat "shr = /2^k" N.(div big_a (of_int 1024)) (N.shift_right big_a 10)

let test_bits () =
  Alcotest.(check int) "bitlen 0" 0 N.(bit_length zero);
  Alcotest.(check int) "bitlen 1" 1 N.(bit_length one);
  Alcotest.(check int) "bitlen 255" 8 N.(bit_length (of_int 255));
  Alcotest.(check int) "bitlen 256" 9 N.(bit_length (of_int 256));
  Alcotest.(check bool) "bit 0 of 5" true N.(bit (of_int 5) 0);
  Alcotest.(check bool) "bit 1 of 5" false N.(bit (of_int 5) 1);
  Alcotest.(check bool) "bit 2 of 5" true N.(bit (of_int 5) 2);
  Alcotest.(check bool) "bit out of range" false (N.bit big_a 10_000)

let test_bytes_roundtrip () =
  Alcotest.check nat "bytes roundtrip" big_a (N.of_bytes_be (N.to_bytes_be big_a));
  Alcotest.(check string) "zero is empty" "" N.(to_bytes_be zero);
  Alcotest.check nat "empty is zero" N.zero (N.of_bytes_be "");
  let padded = N.to_bytes_be_padded 32 big_b in
  Alcotest.(check int) "padded length" 32 (String.length padded);
  Alcotest.check nat "padded value" big_b (N.of_bytes_be padded);
  Alcotest.(check_raises "too small" (Invalid_argument "Nat.to_bytes_be_padded: does not fit")
      (fun () -> ignore (N.to_bytes_be_padded 2 big_a)))

let test_mod_pow () =
  (* 2^10 mod 1000 = 24 *)
  Alcotest.check nat "2^10 mod 1000" (N.of_int 24)
    N.(mod_pow two (of_int 10) (of_int 1000));
  (* Fermat: a^(p-1) = 1 mod p for prime p = 1000003 *)
  let p = N.of_int 1_000_003 in
  Alcotest.check nat "fermat" N.one N.(mod_pow (of_int 31337) (sub p one) p);
  Alcotest.check nat "mod 1" N.zero N.(mod_pow big_a big_b one)

let test_gcd_modinv () =
  Alcotest.check nat "gcd(12,18)" (N.of_int 6) N.(gcd (of_int 12) (of_int 18));
  Alcotest.check nat "gcd(a,0)" big_a (N.gcd big_a N.zero);
  let m = N.of_int 1_000_003 in
  (match N.mod_inv (N.of_int 12345) m with
  | None -> Alcotest.fail "expected inverse"
  | Some inv -> Alcotest.check nat "inverse" N.one N.(rem (mul (of_int 12345) inv) m));
  Alcotest.(check bool) "no inverse" true (N.mod_inv (N.of_int 6) (N.of_int 9) = None)

let test_primes_known () =
  let rounds = 16 in
  let prime_list = [ 2; 3; 5; 17; 257; 65537; 1_000_003 ] in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%d is prime" p)
        true
        (Bignum.Prime.is_probably_prime ~rounds test_rand (N.of_int p)))
    prime_list;
  let composite_list = [ 0; 1; 4; 9; 255; 65535; 1_000_001; 341; 561; 645; 1105 ] in
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%d is composite" c)
        false
        (Bignum.Prime.is_probably_prime ~rounds test_rand (N.of_int c)))
    composite_list

let test_prime_generation () =
  let p = Bignum.Prime.generate ~rounds:8 test_rand 96 in
  Alcotest.(check int) "bit length" 96 (N.bit_length p);
  Alcotest.(check bool) "odd" true (N.is_odd p);
  Alcotest.(check bool) "probably prime" true
    (Bignum.Prime.is_probably_prime ~rounds:16 test_rand p)

let test_random_below () =
  let bound = N.of_int 1000 in
  for _ = 1 to 50 do
    let x = Bignum.Prime.random_nat_below test_rand bound in
    Alcotest.(check bool) "below bound" true (N.compare x bound < 0)
  done

(* Property tests. *)

let small_nat_gen = QCheck.Gen.(map N.of_int (int_bound 1_000_000_000))

let big_nat_gen =
  QCheck.Gen.(
    map
      (fun bytes -> N.of_bytes_be bytes)
      (string_size ~gen:char (int_range 0 40)))

let arb_small = QCheck.make ~print:N.to_string small_nat_gen
let arb_big = QCheck.make ~print:N.to_string big_nat_gen

let prop_add_commutative =
  QCheck.Test.make ~name:"add commutative" ~count:200 (QCheck.pair arb_big arb_big)
    (fun (a, b) -> N.equal (N.add a b) (N.add b a))

let prop_mul_commutative =
  QCheck.Test.make ~name:"mul commutative" ~count:200 (QCheck.pair arb_big arb_big)
    (fun (a, b) -> N.equal (N.mul a b) (N.mul b a))

let prop_mul_distributes =
  QCheck.Test.make ~name:"mul distributes over add" ~count:200
    (QCheck.triple arb_big arb_big arb_big)
    (fun (a, b, c) -> N.equal (N.mul a (N.add b c)) (N.add (N.mul a b) (N.mul a c)))

let prop_divmod_invariant =
  QCheck.Test.make ~name:"divmod invariant" ~count:500 (QCheck.pair arb_big arb_big)
    (fun (a, b) ->
      QCheck.assume (not (N.is_zero b));
      let q, r = N.divmod a b in
      N.equal a (N.add (N.mul q b) r) && N.compare r b < 0)

let prop_matches_int =
  QCheck.Test.make ~name:"agrees with native int" ~count:500
    (QCheck.pair (QCheck.int_bound 100_000) (QCheck.int_bound 100_000))
    (fun (a, b) ->
      let na = N.of_int a and nb = N.of_int b in
      N.to_int_opt (N.add na nb) = Some (a + b)
      && N.to_int_opt (N.mul na nb) = Some (a * b)
      && (b = 0 || N.to_int_opt (N.div na nb) = Some (a / b))
      && (b = 0 || N.to_int_opt (N.rem na nb) = Some (a mod b)))

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bytes roundtrip" ~count:300 arb_big (fun a ->
      N.equal a (N.of_bytes_be (N.to_bytes_be a)))

let prop_string_roundtrip =
  QCheck.Test.make ~name:"decimal roundtrip" ~count:200 arb_big (fun a ->
      N.equal a (N.of_string (N.to_string a)))

let prop_shift_mul =
  QCheck.Test.make ~name:"shift_left k = mul 2^k" ~count:200
    (QCheck.pair arb_big (QCheck.int_bound 100))
    (fun (a, k) ->
      N.equal (N.shift_left a k) (N.mul a (N.mod_pow N.two (N.of_int k) (N.shift_left N.one 200))))

let prop_modinv =
  QCheck.Test.make ~name:"mod_inv correct when defined" ~count:200
    (QCheck.pair arb_small arb_small)
    (fun (a, m) ->
      QCheck.assume (N.compare m N.two >= 0);
      match N.mod_inv a m with
      | None -> not (N.equal (N.gcd a m) N.one) || N.is_zero (N.rem a m)
      | Some x -> N.equal (N.rem (N.mul (N.rem a m) x) m) N.one)

let prop_modpow_small =
  QCheck.Test.make ~name:"mod_pow agrees with naive" ~count:100
    (QCheck.triple (QCheck.int_bound 50) (QCheck.int_bound 12) (QCheck.int_range 1 1000))
    (fun (b, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * b mod m
      done;
      N.to_int_opt (N.mod_pow (N.of_int b) (N.of_int e) (N.of_int m)) = Some !naive)

(* Fast-path cross-checks: the optimized mul (Karatsuba above the limb
   threshold) and mod_pow (Montgomery/sliding-window for odd moduli) against
   the retained reference implementations, on operands big enough to take
   the fast paths. *)

let huge_nat_gen =
  (* Up to ~2080 bits: well past karatsuba_threshold (27 limbs = 702 bits). *)
  QCheck.Gen.(map N.of_bytes_be (string_size ~gen:char (int_range 0 260)))

let arb_huge = QCheck.make ~print:N.to_string huge_nat_gen

let modulus_gen =
  (* 1..48 bytes: spans single-limb through multi-limb, even and odd. *)
  QCheck.Gen.(map N.of_bytes_be (string_size ~gen:char (int_range 1 48)))

let arb_modulus = QCheck.make ~print:N.to_string modulus_gen

let exponent_gen = QCheck.Gen.(map N.of_bytes_be (string_size ~gen:char (int_range 0 8)))
let arb_exponent = QCheck.make ~print:N.to_string exponent_gen

let prop_karatsuba_vs_schoolbook =
  QCheck.Test.make ~name:"karatsuba mul = schoolbook mul" ~count:150
    (QCheck.pair arb_huge arb_huge)
    (fun (a, b) -> N.equal (N.mul a b) (N.mul_schoolbook a b))

let prop_montgomery_vs_naive =
  QCheck.Test.make ~name:"mod_pow = mod_pow_naive (odd and even moduli)" ~count:100
    (QCheck.triple arb_huge arb_exponent arb_modulus)
    (fun (b, e, m) ->
      QCheck.assume (not (N.is_zero m));
      N.equal (N.mod_pow b e m) (N.mod_pow_naive b e m))

let prop_divmod_huge =
  QCheck.Test.make ~name:"divmod reconstruction on huge operands" ~count:150
    (QCheck.pair arb_huge arb_modulus)
    (fun (a, b) ->
      QCheck.assume (not (N.is_zero b));
      let q, r = N.divmod a b in
      N.equal a (N.add (N.mul q b) r) && N.compare r b < 0)

let test_fast_path_edges () =
  let huge = N.of_string (String.concat "" (List.init 9 (fun _ -> "123456789876543212345678987")) ) in
  let odd_m = N.add (N.shift_left N.one 521) N.one in
  (* zero exponent: b^0 = 1 mod m (and 0 when m = 1) *)
  Alcotest.check nat "zero exponent" N.one (N.mod_pow huge N.zero odd_m);
  Alcotest.check nat "modulus one" N.zero (N.mod_pow huge big_b N.one);
  Alcotest.check nat "zero exponent, modulus one" N.zero (N.mod_pow huge N.zero N.one);
  (* single-limb odd modulus takes the Montgomery path *)
  let m1 = N.of_int 1_000_003 in
  Alcotest.check nat "single-limb modulus" (N.mod_pow_naive huge big_b m1)
    (N.mod_pow huge big_b m1);
  (* even modulus falls back to the naive path; results must agree *)
  let even_m = N.shift_left (N.of_int 3) 130 in
  Alcotest.check nat "even modulus fallback" (N.mod_pow_naive huge big_b even_m)
    (N.mod_pow huge big_b even_m);
  Alcotest.(check bool) "even modulus really even" true (N.is_even even_m);
  (* base a multiple of the modulus *)
  Alcotest.check nat "base = 0 mod m" N.zero (N.mod_pow (N.mul odd_m N.two) big_b odd_m);
  (* operand aliasing: the same value on both/all sides *)
  Alcotest.check nat "mul aliasing" (N.mul_schoolbook huge huge) (N.mul huge huge);
  Alcotest.check nat "mod_pow aliasing" (N.mod_pow_naive huge huge odd_m)
    (N.mod_pow huge huge odd_m);
  let odd_huge = if N.is_even huge then N.add huge N.one else huge in
  Alcotest.check nat "mod_pow all-aliased" (N.mod_pow_naive odd_huge odd_huge odd_huge)
    (N.mod_pow odd_huge odd_huge odd_huge);
  (* Karatsuba exercises operands just around the split point *)
  let around = [ 26; 27; 28; 53; 54; 55 ] in
  List.iter
    (fun limbs ->
      let x = N.sub (N.shift_left N.one (limbs * 26)) N.one in
      let y = N.add (N.shift_left N.one ((limbs - 1) * 26)) (N.of_int 12345) in
      Alcotest.check nat
        (Printf.sprintf "threshold split %d limbs" limbs)
        (N.mul_schoolbook x y) (N.mul x y))
    around

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_add_commutative; prop_mul_commutative; prop_mul_distributes;
      prop_divmod_invariant; prop_matches_int; prop_bytes_roundtrip;
      prop_string_roundtrip; prop_shift_mul; prop_modinv; prop_modpow_small;
      prop_karatsuba_vs_schoolbook; prop_montgomery_vs_naive; prop_divmod_huge ]

let suite =
  [ ("int conversion", `Quick, test_of_to_int);
    ("decimal roundtrip", `Quick, test_decimal_roundtrip);
    ("add/sub", `Quick, test_add_sub);
    ("mul/div", `Quick, test_mul_div);
    ("known quotient", `Quick, test_known_quotient);
    ("shifts", `Quick, test_shifts);
    ("bits", `Quick, test_bits);
    ("bytes roundtrip", `Quick, test_bytes_roundtrip);
    ("mod_pow", `Quick, test_mod_pow);
    ("gcd/modinv", `Quick, test_gcd_modinv);
    ("fast-path edges", `Quick, test_fast_path_edges);
    ("known primes", `Quick, test_primes_known);
    ("prime generation", `Slow, test_prime_generation);
    ("random below", `Quick, test_random_below) ]
  @ List.map (fun (n, s, f) -> (n, s, f)) props

let () = Alcotest.run "bignum" [ ("nat+prime", suite) ]
