(* TGS proxies (Section 6.3) and cross-realm authentication: the two
   mechanisms that turn per-server conventional proxies into realm- and
   server-spanning delegation. *)

module R = Restriction
module W = Testkit

(* --- TGS proxies --- *)

type tgs_world = { w : W.world; alice : Principal.t; fs1 : Principal.t; fs2 : Principal.t }

let make_fileserver w owner name =
  let fs_name, fs_key = W.enrol w name in
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is owner; rights = []; restrictions = [] };
  let fs = File_server.create w.W.net ~me:fs_name ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"report.txt" "contents";
  File_server.put_direct fs ~path:"secret.txt" "hidden";
  fs_name

let tgs_world () =
  let w = W.create ~seed:"tgs proxy tests" () in
  let alice, _ = W.enrol w "alice" in
  let fs1 = make_fileserver w alice "fs1" in
  let fs2 = make_fileserver w alice "fs2" in
  { w; alice; fs1; fs2 }

let read_only_report = [ R.Authorized [ { R.target = "report.txt"; ops = [ "read" ] } ] ]

let test_tgs_proxy_spans_servers () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  (* Alice grants a TGS proxy restricted to reading report.txt; the grantee
     can mint service tickets for ANY server, all carrying the
     restriction. *)
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  Alcotest.(check int) "restrictions visible" 1 (List.length (Tgs_proxy.restrictions_of proxy_tgt));
  List.iter
    (fun fs ->
      let creds =
        Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt ~service:fs)
      in
      (match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
      | Ok content -> Alcotest.(check string) "reads report" "contents" content
      | Error e -> Alcotest.fail e);
      (match File_server.read tw.w.W.net ~creds ~path:"secret.txt" () with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "restriction did not carry to the end-server");
      match File_server.write tw.w.W.net ~creds ~path:"report.txt" "defaced" with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "write allowed through a read-only TGS proxy")
    [ tw.fs1; tw.fs2 ]

let test_tgs_proxy_cannot_widen () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  (* The grantee re-derives through the TGS "adding" a permissive
     restriction; the original must still bind (restrictions are unioned,
     and check_all requires every one to pass). *)
  let widened =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt:proxy_tgt
         ~restrictions:[ R.Authorized [ { R.target = "secret.txt"; ops = [] } ] ]
         ())
  in
  let creds =
    Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt:widened ~service:tw.fs1)
  in
  (match File_server.read tw.w.W.net ~creds ~path:"secret.txt" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "grantee widened a TGS proxy");
  (* Even the originally-allowed file is now blocked: the two Authorized
     restrictions intersect to nothing that satisfies both. *)
  match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "intersection semantics violated"

let test_tgs_proxy_transfer_encoding () =
  let tw = tgs_world () in
  let tgt = W.login tw.w tw.alice in
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant tw.w.W.net ~kdc:tw.w.W.kdc_name ~tgt ~restrictions:read_only_report ())
  in
  match Ticket.credentials_of_wire (Ticket.credentials_to_wire proxy_tgt) with
  | Error e -> Alcotest.fail e
  | Ok creds' ->
      let creds =
        Result.get_ok (Tgs_proxy.use tw.w.W.net ~kdc:tw.w.W.kdc_name ~proxy_tgt:creds' ~service:tw.fs1)
      in
      (match File_server.read tw.w.W.net ~creds ~path:"report.txt" () with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let test_transport_restrictions_on_accounting () =
  (* A TGS proxy with a spending quota: the grantee can move small amounts
     from alice's account but not large ones. *)
  let w = W.create ~seed:"tgs accounting" () in
  let alice, _ = W.enrol w "alice" in
  let bank_p, bank_key = W.enrol w "bank" in
  let bank_rsa = Crypto.Rsa.generate (Sim.Net.drbg w.W.net) ~bits:512 in
  let bank =
    Result.get_ok
      (Accounting_server.create w.W.net ~me:bank_p ~my_key:bank_key ~kdc:w.W.kdc_name
         ~signing_key:bank_rsa
         ~lookup:(fun p -> Directory.public w.W.dir p)
         ())
  in
  Accounting_server.install bank;
  let tgt = W.login w alice in
  let creds_direct = W.credentials_for w ~tgt bank_p in
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_direct ~name:"alice");
  Result.get_ok (Accounting_server.open_account w.W.net ~creds:creds_direct ~name:"petty-cash");
  ignore (Ledger.mint (Accounting_server.ledger bank) ~name:"alice" ~currency:"usd" 1000);
  let proxy_tgt =
    Result.get_ok
      (Tgs_proxy.grant w.W.net ~kdc:w.W.kdc_name ~tgt
         ~restrictions:[ R.Quota ("usd", 50) ] ())
  in
  let creds =
    Result.get_ok (Tgs_proxy.use w.W.net ~kdc:w.W.kdc_name ~proxy_tgt ~service:bank_p)
  in
  (match
     Accounting_server.transfer w.W.net ~creds ~from_:"alice" ~to_:"petty-cash" ~currency:"usd"
       ~amount:30
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match
    Accounting_server.transfer w.W.net ~creds ~from_:"alice" ~to_:"petty-cash" ~currency:"usd"
      ~amount:51
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "quota on TGS proxy ignored by the accounting server"

(* --- cross-realm --- *)

type realms = {
  wa : W.world; (* realm A, with its own KDC *)
  wb : W.world;
  alice_a : Principal.t; (* alice@A *)
  fs_b : Principal.t; (* file server in realm B *)
}

(* Two realms sharing one simulated network: build B's KDC on A's net. *)
let two_realms () =
  let wa = W.create ~seed:"realm A" ~realm:"realm-a" () in
  let net = wa.W.net in
  let dir_b = Directory.create () in
  let kdc_b_name = Principal.make ~realm:"realm-b" "kdc" in
  Directory.add_symmetric dir_b kdc_b_name (Sim.Net.fresh_key net);
  let kdc_b = Kdc.create net ~name:kdc_b_name ~directory:dir_b () in
  Kdc.install kdc_b;
  Kdc.federate wa.W.kdc kdc_b;
  let alice_a, _ = W.enrol wa "alice" in
  (* A file server in realm B whose ACL names alice@A. *)
  let fs_b = Principal.make ~realm:"realm-b" "fileserver" in
  let fs_key = Sim.Net.fresh_key net in
  Directory.add_symmetric dir_b fs_b fs_key;
  let acl = Acl.create () in
  Acl.add acl ~target:"*" { Acl.subject = Acl.Principal_is alice_a; rights = [ "read" ]; restrictions = [] };
  let fs = File_server.create net ~me:fs_b ~my_key:fs_key ~acl () in
  File_server.install fs;
  File_server.put_direct fs ~path:"doc" "cross-realm data";
  let wb = { wa with W.dir = dir_b; W.kdc = kdc_b; W.kdc_name = kdc_b_name; W.realm = "realm-b" } in
  { wa; wb; alice_a; fs_b }

let test_cross_realm_access () =
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  (* Cross-realm TGT: A's TGS issues a ticket for B's KDC. *)
  let cross_tgt =
    match
      Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.wb.W.kdc_name ()
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "names B's KDC" true
    (Principal.equal cross_tgt.Ticket.cred_service r.wb.W.kdc_name);
  (* Present it to B's TGS for a service ticket in realm B. *)
  let creds =
    match
      Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross_tgt ~target:r.fs_b ()
    with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  match File_server.read r.wa.W.net ~creds ~path:"doc" () with
  | Ok content -> Alcotest.(check string) "read across realms" "cross-realm data" content
  | Error e -> Alcotest.fail e

let test_cross_realm_requires_trust () =
  (* Without federation, A's TGS refuses to mint a ticket for B's KDC. *)
  let wa = W.create ~seed:"lonely realm" ~realm:"realm-a" () in
  let alice, _ = W.enrol wa "alice" in
  let tgt = W.login wa alice in
  let foreign_kdc = Principal.make ~realm:"realm-b" "kdc" in
  match Kdc.Client.derive wa.W.net ~kdc:wa.W.kdc_name ~tgt ~target:foreign_kdc () with
  | Error e -> Alcotest.(check bool) "mentions trust" true (e <> "")
  | Ok _ -> Alcotest.fail "ticket issued without a trust path"

let test_cross_realm_restrictions_survive () =
  (* Restrictions placed in realm A bind in realm B: additive across the
     boundary. *)
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  let restricted =
    Result.get_ok
      (Tgs_proxy.grant r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a
         ~restrictions:[ R.Authorized [ { R.target = "other"; ops = [ "read" ] } ] ]
         ())
  in
  let cross =
    Result.get_ok
      (Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:restricted
         ~target:r.wb.W.kdc_name ())
  in
  let creds =
    Result.get_ok (Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross ~target:r.fs_b ())
  in
  match File_server.read r.wa.W.net ~creds ~path:"doc" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restriction dropped at the realm boundary"

let test_cross_realm_ticket_not_tgt_elsewhere () =
  (* A service ticket for B's file server is not accepted by B's TGS as a
     TGT. *)
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  let cross =
    Result.get_ok
      (Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.wb.W.kdc_name ())
  in
  let service_creds =
    Result.get_ok (Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross ~target:r.fs_b ())
  in
  match
    Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:service_creds ~target:r.fs_b ()
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "service ticket worked as a TGT"

let test_cross_realm_check_clearing () =
  (* Accounting across administrative domains: carol banks in realm A, the
     shop banks in realm B; the shop's bank collects from the drawee through
     the federation (its granter walks the cross-realm TGS path). *)
  let r = two_realms () in
  let net = r.wa.W.net in
  let drbg = Sim.Net.drbg net in
  (* Shared public-key directory so both banks can verify signatures. *)
  let pk_dir = Directory.create () in
  let lookup p = Directory.public pk_dir p in
  let carol, _ = W.enrol r.wa "carol" in
  let carol_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir carol carol_rsa.Crypto.Rsa.pub;
  (* Bank in realm A (drawee). *)
  let bank_a = Principal.make ~realm:"realm-a" "bank" in
  let bank_a_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wa.W.dir bank_a bank_a_key;
  let bank_a_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir bank_a bank_a_rsa.Crypto.Rsa.pub;
  let drawee =
    Result.get_ok
      (Accounting_server.create net ~me:bank_a ~my_key:bank_a_key ~kdc:r.wa.W.kdc_name
         ~signing_key:bank_a_rsa ~lookup ())
  in
  Accounting_server.install drawee;
  (* Bank in realm B (the shop's). *)
  let bank_b = Principal.make ~realm:"realm-b" "bank" in
  let bank_b_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wb.W.dir bank_b bank_b_key;
  let bank_b_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir bank_b bank_b_rsa.Crypto.Rsa.pub;
  let payee_bank =
    Result.get_ok
      (Accounting_server.create net ~me:bank_b ~my_key:bank_b_key ~kdc:r.wb.W.kdc_name
         ~signing_key:bank_b_rsa ~lookup ())
  in
  Accounting_server.install payee_bank;
  (* Shop lives in realm B. *)
  let shop = Principal.make ~realm:"realm-b" "shop" in
  let shop_key = Sim.Net.fresh_key net in
  Directory.add_symmetric r.wb.W.dir shop shop_key;
  let shop_rsa = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public pk_dir shop shop_rsa.Crypto.Rsa.pub;
  (* Fund carol at the realm-A bank. *)
  let tgt_c = W.login r.wa carol in
  let creds_ca = W.credentials_for r.wa ~tgt:tgt_c bank_a in
  Result.get_ok (Accounting_server.open_account net ~creds:creds_ca ~name:"carol");
  ignore (Ledger.mint (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd" 300);
  (* Shop account at the realm-B bank. *)
  let tgt_s =
    match
      Kdc.Client.authenticate net ~kdc:r.wb.W.kdc_name ~client:shop ~client_key:shop_key
        ~service:r.wb.W.kdc_name ()
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let creds_sb =
    Result.get_ok (Kdc.Client.derive net ~kdc:r.wb.W.kdc_name ~tgt:tgt_s ~target:bank_b ())
  in
  Result.get_ok (Accounting_server.open_account net ~creds:creds_sb ~name:"shop");
  (* The purchase. *)
  let now = W.now r.wa in
  let check =
    Check.write ~drbg ~now ~expires:(now + (24 * W.hour)) ~payor:carol ~payor_key:carol_rsa
      ~account:(Accounting_server.account drawee "carol") ~payee:shop ~currency:"usd"
      ~amount:120 ()
  in
  (match
     Accounting_server.deposit net ~creds:creds_sb ~endorser_key:shop_rsa ~check
       ~to_account:"shop"
   with
  | Ok amount -> Alcotest.(check int) "cleared across realms" 120 amount
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "carol debited in realm A" 180
    (Ledger.balance (Accounting_server.ledger drawee) ~name:"carol" ~currency:"usd");
  Alcotest.(check int) "shop credited in realm B" 120
    (Ledger.balance (Accounting_server.ledger payee_bank) ~name:"shop" ~currency:"usd")

(* --- forged inter-realm TGTs: the realm-binding check --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Hand-craft a TGS request whose TGT blob is sealed under [key], naming
   [client], and return the TGS's error string (fails the test on
   acceptance). *)
let forged_tgs_error net ~key ~client ~kdc ~target =
  let session_key = Sim.Net.fresh_key net in
  let now = Sim.Net.now net in
  let body =
    {
      Ticket.client;
      service = kdc;
      session_key;
      auth_time = now;
      expires = now + W.hour;
      authorization_data = [];
    }
  in
  let blob = Ticket.seal ~service_key:key ~nonce:(Sim.Net.fresh_nonce net) body in
  let auth = { Ticket.auth_client = client; timestamp = now; subkey = None; auth_data = [] } in
  let auth_blob = Ticket.seal_authenticator ~session_key ~nonce:(Sim.Net.fresh_nonce net) auth in
  let request =
    Wire.encode
      (Wire.L [ Wire.S "tgs"; Wire.S blob; Wire.S auth_blob; Principal.to_wire target; Wire.I 3 ])
  in
  match Sim.Net.rpc net ~src:(Principal.to_string client) ~dst:(Principal.to_string kdc) request with
  | Error e -> Alcotest.fail ("transport: " ^ e)
  | Ok reply -> (
      match Wire.decode reply with
      | Error e -> Alcotest.fail ("undecodable reply: " ^ e)
      | Ok v -> (
          match Result.bind (Wire.field v 0) Wire.to_string with
          | Ok "err" -> Result.get_ok (Result.bind (Wire.field v 1) Wire.to_string)
          | _ -> Alcotest.fail "forged TGS request was accepted"))

(* A world whose KDC trusts peer "realm-c" under a key the test knows. *)
let trusting_world () =
  let w = W.create ~seed:"forged tgt" ~realm:"realm-b" () in
  let key_bc = Sim.Net.fresh_key w.W.net in
  Kdc.add_cross_realm w.W.kdc ~peer_realm:"realm-c" ~key:key_bc;
  let victim, _ = W.enrol w "victim-service" in
  (w, key_bc, victim)

let test_forged_client_realm_foreign () =
  (* The C<->B key speaks only for realm C's principals: a TGT minted under
     it naming a realm-A client must be refused with the realm mismatch —
     otherwise peer C could impersonate any realm's users at B. *)
  let w, key_bc, victim = trusting_world () in
  let mallory = Principal.make ~realm:"realm-a" "mallory" in
  Alcotest.(check string) "pinned realm-mismatch error"
    "tgs: cross-realm TGT client realm realm-a does not match trusting realm realm-c"
    (forged_tgs_error w.W.net ~key:key_bc ~client:mallory ~kdc:w.W.kdc_name ~target:victim)

let test_forged_client_realm_local () =
  (* Nor may a federated peer mint tickets for the trusting realm's OWN
     users — the worst case of the forgery hole. *)
  let w, key_bc, victim = trusting_world () in
  let mallory = Principal.make ~realm:"realm-b" "mallory" in
  Alcotest.(check string) "pinned realm-mismatch error"
    "tgs: cross-realm TGT client realm realm-b does not match trusting realm realm-c"
    (forged_tgs_error w.W.net ~key:key_bc ~client:mallory ~kdc:w.W.kdc_name ~target:victim)

let test_forged_unknown_key () =
  (* A TGT sealed under a key from no trusted peer opens under nothing and
     is refused without naming any realm. *)
  let w, _, victim = trusting_world () in
  let mallory = Principal.make ~realm:"realm-c" "mallory" in
  Alcotest.(check string) "exhausted key trial"
    "tgs: cannot open presented ticket"
    (forged_tgs_error w.W.net ~key:(Sim.Net.fresh_key w.W.net) ~client:mallory ~kdc:w.W.kdc_name
       ~target:victim)

let test_cross_realm_only_names_kdc () =
  (* A's TGS never seals a ticket for an arbitrary foreign service under the
     inter-realm key — only for the peer KDC. *)
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  match Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.fs_b () with
  | Error e ->
      Alcotest.(check string) "pinned error"
        "cross-realm tickets may only name the remote realm's KDC" e
  | Ok _ -> Alcotest.fail "A's TGS issued a foreign service ticket directly"

let test_expired_cross_realm_tgt () =
  let r = two_realms () in
  let tgt_a = W.login r.wa r.alice_a in
  let cross =
    Result.get_ok
      (Kdc.Client.derive r.wa.W.net ~kdc:r.wa.W.kdc_name ~tgt:tgt_a ~target:r.wb.W.kdc_name ())
  in
  Sim.Clock.advance (Sim.Net.clock r.wa.W.net) (cross.Ticket.cred_expires - W.now r.wa + 1);
  match Kdc.Client.derive r.wa.W.net ~kdc:r.wb.W.kdc_name ~tgt:cross ~target:r.fs_b () with
  | Error e -> Alcotest.(check string) "pinned error" "tgs: TGT expired" e
  | Ok _ -> Alcotest.fail "expired cross-realm TGT accepted"

(* --- TGS subkeys: malformed on either side is refused in-band --- *)

let test_subkey_client_validated () =
  let w = W.create ~seed:"subkey client" () in
  let alice, _ = W.enrol w "alice" in
  let svc, _ = W.enrol w "svc" in
  let tgt = W.login w alice in
  match Kdc.Client.derive w.W.net ~kdc:w.W.kdc_name ~tgt ~target:svc ~subkey:"short" () with
  | Error e -> Alcotest.(check string) "pinned error" "derive: subkey must be 32 bytes" e
  | Ok _ -> Alcotest.fail "client sent a malformed subkey"

let test_subkey_server_refuses_wire () =
  (* A client library that skips validation still gets a clean in-band
     refusal, not an opaque decrypt failure on the reply. *)
  let w = W.create ~seed:"subkey server" () in
  let alice, _ = W.enrol w "alice" in
  let svc, _ = W.enrol w "svc" in
  let tgt = W.login w alice in
  let now = W.now w in
  let auth =
    { Ticket.auth_client = alice; timestamp = now; subkey = Some "short"; auth_data = [] }
  in
  let auth_blob =
    Ticket.seal_authenticator ~session_key:tgt.Ticket.session_key
      ~nonce:(Sim.Net.fresh_nonce w.W.net) auth
  in
  let request =
    Wire.encode
      (Wire.L
         [ Wire.S "tgs"; Wire.S tgt.Ticket.ticket_blob; Wire.S auth_blob; Principal.to_wire svc;
           Wire.I 4 ])
  in
  match
    Sim.Net.rpc w.W.net ~src:(Principal.to_string alice) ~dst:(Principal.to_string w.W.kdc_name)
      request
  with
  | Error e -> Alcotest.fail ("transport: " ^ e)
  | Ok reply -> (
      match Wire.decode reply with
      | Error e -> Alcotest.fail e
      | Ok v -> (
          match Result.bind (Wire.field v 0) Wire.to_string with
          | Ok "err" ->
              Alcotest.(check string) "pinned error" "tgs: subkey must be 32 bytes"
                (Result.get_ok (Result.bind (Wire.field v 1) Wire.to_string))
          | _ -> Alcotest.fail "malformed subkey accepted"))

let test_subkey_wellformed_accepted () =
  let w = W.create ~seed:"subkey ok" () in
  let alice, _ = W.enrol w "alice" in
  let svc, svc_key = W.enrol w "svc" in
  ignore svc_key;
  let tgt = W.login w alice in
  let subkey = Sim.Net.fresh_key w.W.net in
  match Kdc.Client.derive w.W.net ~kdc:w.W.kdc_name ~tgt ~target:svc ~subkey () with
  | Ok creds ->
      Alcotest.(check bool) "names the service" true
        (Principal.equal creds.Ticket.cred_service svc)
  | Error e -> Alcotest.fail e

(* --- granter recovery after an inter-realm rekey --- *)

let test_granter_rekey_evict_retry () =
  let r = two_realms () in
  let net = r.wa.W.net in
  let me, my_key = W.enrol r.wa "walker" in
  (* Something else in realm B to force a second remote derive after the
     first target is already cached. *)
  let printer = Principal.make ~realm:"realm-b" "printer" in
  Directory.add_symmetric r.wb.W.dir printer (Sim.Net.fresh_key net);
  (* fs_b's ACL doesn't matter here — only ticket issuance. *)
  let g = Result.get_ok (Granter.create net ~me ~my_key ~kdc:r.wa.W.kdc_name) in
  (match Granter.credentials_for g r.fs_b with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("first cross-realm derive: " ^ e));
  (* Rekey the A<->B link: the cached cross-realm TGT is now sealed under a
     key B no longer holds. *)
  Kdc.federate r.wa.W.kdc r.wb.W.kdc;
  (* Sanity: a stale cross TGT really is dead at B after the rekey. *)
  let tgt = W.login r.wa me in
  let stale_cross =
    Result.get_ok (Kdc.Client.derive net ~kdc:r.wa.W.kdc_name ~tgt ~target:r.wb.W.kdc_name ())
  in
  Kdc.federate r.wa.W.kdc r.wb.W.kdc;
  (match Kdc.Client.derive net ~kdc:r.wb.W.kdc_name ~tgt:stale_cross ~target:printer () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale cross-realm TGT survived the rekey");
  (* The granter must evict its cached cross TGT and retry the full path. *)
  match Granter.credentials_for g printer with
  | Ok creds ->
      Alcotest.(check bool) "names the printer" true
        (Principal.equal creds.Ticket.cred_service printer)
  | Error e -> Alcotest.fail ("granter did not recover from the rekey: " ^ e)

(* --- membership snapshots and the staleness bound --- *)

let member_fixture () =
  let drbg = Crypto.Drbg.create ~seed:"membership tests" in
  let rsa = Crypto.Rsa.generate drbg ~bits:512 in
  let gs = Principal.make ~realm:"realm-a" "groups" in
  let p name = Principal.make ~realm:"realm-a" name in
  (rsa, gs, p)

let test_snapshot_sign_verify_wire () =
  let rsa, gs, p = member_fixture () in
  let groups = [ ("eng", [ p "carol"; p "alice"; p "bob"; p "alice" ]) ] in
  let snap = Membership.sign ~key:rsa ~server:gs ~epoch:1 ~issued_at:1_000 groups in
  (* Canonicalized: sorted, deduped. *)
  Alcotest.(check int) "deduped" 3 (List.length (List.assoc "eng" snap.Membership.s_groups));
  (match Membership.verify_snapshot rsa.Crypto.Rsa.pub snap with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Any field change invalidates the signature. *)
  (match Membership.verify_snapshot rsa.Crypto.Rsa.pub { snap with Membership.s_epoch = 9 } with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "tampered snapshot verified");
  (match Membership.snapshot_of_wire (Membership.snapshot_to_wire snap) with
  | Ok snap' -> Alcotest.(check bool) "wire round-trip" true (snap = snap')
  | Error e -> Alcotest.fail e);
  match Membership.snapshot_of_wire (Membership.snapshot_to_wire { snap with Membership.s_epoch = 0 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "epoch 0 snapshot decoded"

let test_snapshot_apply_ordering () =
  let rsa, gs, p = member_fixture () in
  let sub = Membership.create ~server:gs ~server_pub:rsa.Crypto.Rsa.pub ~now:0 () in
  let snap1 = Membership.sign ~key:rsa ~server:gs ~epoch:1 ~issued_at:1_000 [ ("eng", [ p "alice"; p "bob" ]) ] in
  (match Membership.apply sub snap1 with
  | Ok (Membership.Applied { fresh }) -> Alcotest.(check int) "full table fresh" 2 fresh
  | Ok Membership.Ignored -> Alcotest.fail "first snapshot ignored"
  | Error e -> Alcotest.fail e);
  (* Replay is idempotent, not an error. *)
  (match Membership.apply sub snap1 with
  | Ok Membership.Ignored -> ()
  | _ -> Alcotest.fail "replayed snapshot not ignored");
  let snap2 =
    Membership.sign ~key:rsa ~server:gs ~epoch:2 ~issued_at:2_000
      [ ("eng", [ p "alice"; p "bob"; p "carol" ]) ]
  in
  (match Membership.apply sub snap2 with
  | Ok (Membership.Applied { fresh }) -> Alcotest.(check int) "only the growth is fresh" 1 fresh
  | _ -> Alcotest.fail "newer snapshot not applied");
  Alcotest.(check bool) "carol now a member" true (Membership.member sub ~group:"eng" (p "carol"));
  (* Wrong signer and wrong server identity are refused outright. *)
  let other = Crypto.Rsa.generate (Crypto.Drbg.create ~seed:"other key") ~bits:512 in
  let forged = Membership.sign ~key:other ~server:gs ~epoch:3 ~issued_at:3_000 [] in
  (match Membership.apply sub forged with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "snapshot with a wrong signature applied");
  let wrong_server =
    Membership.sign ~key:rsa ~server:(p "not-groups") ~epoch:3 ~issued_at:3_000 []
  in
  match Membership.apply sub wrong_server with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "snapshot from the wrong server applied"

let test_membership_fail_closed_when_stale () =
  let rsa, gs, p = member_fixture () in
  let bound = 1_000_000 in
  let sub = Membership.create ~server:gs ~server_pub:rsa.Crypto.Rsa.pub ~staleness_bound_us:bound ~now:0 () in
  let snap1 = Membership.sign ~key:rsa ~server:gs ~epoch:1 ~issued_at:500 [ ("eng", [ p "alice" ]) ] in
  ignore (Result.get_ok (Membership.apply sub snap1));
  (match Membership.check sub ~now:1_000 ~group:"eng" (p "alice") with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* A non-member is refused with a membership decision, not staleness. *)
  (match Membership.check sub ~now:1_000 ~group:"eng" (p "mallory") with
  | Error e -> Alcotest.(check bool) "membership denial" true (contains e "not a member")
  | Ok () -> Alcotest.fail "non-member served");
  (* Past the bound even a real member is refused: fail closed. *)
  (match Membership.check sub ~now:(500 + bound + 1) ~group:"eng" (p "alice") with
  | Error e -> Alcotest.(check bool) "fails closed" true (contains e "failing closed")
  | Ok () -> Alcotest.fail "stale replica kept serving");
  (* A fresh snapshot restores service. *)
  let snap2 =
    Membership.sign ~key:rsa ~server:gs ~epoch:2 ~issued_at:(500 + bound + 1)
      [ ("eng", [ p "alice" ]) ]
  in
  ignore (Result.get_ok (Membership.apply sub snap2));
  match Membership.check sub ~now:(500 + bound + 2) ~group:"eng" (p "alice") with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("fresh snapshot did not restore service: " ^ e)

let test_lookup_by_realm_fails_closed () =
  (* Same short name enrolled in two realms with different keys: the routed
     lookup must resolve each against its own realm's directory, and an
     unrouted realm resolves to nothing — never falls through. *)
  let drbg = Crypto.Drbg.create ~seed:"routed lookup" in
  let dir_a = Directory.create () and dir_b = Directory.create () in
  let alice_a = Principal.make ~realm:"realm-a" "alice" in
  let alice_b = Principal.make ~realm:"realm-b" "alice" in
  let rsa_a = Crypto.Rsa.generate drbg ~bits:512 in
  let rsa_b = Crypto.Rsa.generate drbg ~bits:512 in
  Directory.add_public dir_a alice_a rsa_a.Crypto.Rsa.pub;
  Directory.add_public dir_b alice_b rsa_b.Crypto.Rsa.pub;
  let routed =
    Verifier.lookup_by_realm
      [ ("realm-a", Directory.public dir_a); ("realm-b", Directory.public dir_b) ]
  in
  (match routed alice_a with
  | Some pub -> Alcotest.(check bool) "realm A key" true (pub = rsa_a.Crypto.Rsa.pub)
  | None -> Alcotest.fail "alice@realm-a unresolved");
  (match routed alice_b with
  | Some pub -> Alcotest.(check bool) "realm B key" true (pub = rsa_b.Crypto.Rsa.pub)
  | None -> Alcotest.fail "alice@realm-b unresolved");
  match routed (Principal.make ~realm:"realm-c" "alice") with
  | None -> ()
  | Some _ -> Alcotest.fail "unrouted realm fell through to another realm's keys"

let () =
  Alcotest.run "federation"
    [ ( "tgs-proxy",
        [ ("spans end-servers", `Quick, test_tgs_proxy_spans_servers);
          ("cannot widen", `Quick, test_tgs_proxy_cannot_widen);
          ("transfer encoding", `Quick, test_tgs_proxy_transfer_encoding);
          ("quota binds accounting ops", `Slow, test_transport_restrictions_on_accounting) ] );
      ( "cross-realm",
        [ ("access across realms", `Quick, test_cross_realm_access);
          ("requires trust", `Quick, test_cross_realm_requires_trust);
          ("restrictions survive", `Quick, test_cross_realm_restrictions_survive);
          ("service ticket is not a TGT", `Quick, test_cross_realm_ticket_not_tgt_elsewhere);
          ("check clears across realms", `Slow, test_cross_realm_check_clearing) ] );
      ( "cross-realm negatives",
        [ ("forged foreign-client TGT refused", `Quick, test_forged_client_realm_foreign);
          ("forged local-client TGT refused", `Quick, test_forged_client_realm_local);
          ("unknown inter-realm key refused", `Quick, test_forged_unknown_key);
          ("cross-realm tickets only name the KDC", `Quick, test_cross_realm_only_names_kdc);
          ("expired cross-realm TGT refused", `Quick, test_expired_cross_realm_tgt) ] );
      ( "tgs-subkey",
        [ ("client validates before sending", `Quick, test_subkey_client_validated);
          ("server refuses malformed subkey in-band", `Quick, test_subkey_server_refuses_wire);
          ("well-formed subkey accepted", `Quick, test_subkey_wellformed_accepted) ] );
      ( "granter",
        [ ("rekey recovery: evict and retry", `Quick, test_granter_rekey_evict_retry) ] );
      ( "membership",
        [ ("snapshot sign/verify/wire", `Quick, test_snapshot_sign_verify_wire);
          ("apply ordering and authenticity", `Quick, test_snapshot_apply_ordering);
          ("fail closed when stale", `Quick, test_membership_fail_closed_when_stale);
          ("realm-routed key lookup fails closed", `Quick, test_lookup_by_realm_fails_closed) ] ) ]
