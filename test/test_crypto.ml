(* Crypto substrate tests: published vectors for SHA-256 / HMAC / ChaCha20,
   behavioural and property tests for DRBG, AEAD, and RSA. *)

module Sha256 = Crypto.Sha256
module Hmac = Crypto.Hmac
module Chacha20 = Crypto.Chacha20
module Drbg = Crypto.Drbg
module Aead = Crypto.Aead
module Rsa = Crypto.Rsa
module Ct = Crypto.Ct

let hex s =
  (* Parse "ab cd" or "abcd" hex into raw bytes. *)
  let buf = Buffer.create 32 in
  let pending = ref None in
  String.iter
    (fun c ->
      if c <> ' ' && c <> '\n' then
        let v =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> invalid_arg "hex"
        in
        match !pending with
        | None -> pending := Some v
        | Some hi ->
            Buffer.add_char buf (Char.chr ((hi lsl 4) lor v));
            pending := None)
    s;
  Buffer.contents buf

(* --- SHA-256: FIPS 180-4 / NIST CAVS vectors --- *)

let test_sha256_vectors () =
  let cases =
    [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1_000_000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" ) ]
  in
  List.iter
    (fun (msg, want) -> Alcotest.(check string) "sha256" want (Sha256.hex_digest msg))
    cases

let test_sha256_incremental () =
  (* Streaming in odd-sized chunks must agree with one-shot. *)
  let msg = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let pos = ref 0 in
  let sizes = [ 1; 63; 64; 65; 100; 7; 1000; 2000 ] in
  List.iter
    (fun n ->
      let n = min n (String.length msg - !pos) in
      Sha256.update ctx (String.sub msg !pos n);
      pos := !pos + n)
    sizes;
  Sha256.update ctx (String.sub msg !pos (String.length msg - !pos));
  Alcotest.(check string) "incremental = one-shot" (Sha256.digest msg) (Sha256.finalize ctx)

(* --- HMAC-SHA256: RFC 4231 vectors --- *)

let test_hmac_vectors () =
  let cases =
    [ ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" ) ]
  in
  List.iter
    (fun (key, msg, want) ->
      Alcotest.(check string) "hmac" want (Sha256.to_hex (Hmac.mac ~key msg)))
    cases

let test_hmac_verify () =
  let key = "secret-key" and msg = "the message" in
  let tag = Hmac.mac ~key msg in
  Alcotest.(check bool) "accepts" true (Hmac.verify ~key ~msg ~tag);
  Alcotest.(check bool) "rejects bad tag" false
    (Hmac.verify ~key ~msg ~tag:(String.make 32 '\x00'));
  Alcotest.(check bool) "rejects bad key" false (Hmac.verify ~key:"other" ~msg ~tag);
  Alcotest.(check bool) "rejects truncated" false
    (Hmac.verify ~key ~msg ~tag:(String.sub tag 0 16))

(* --- ChaCha20: RFC 8439 section 2.4.2 vector --- *)

let test_chacha20_vector () =
  let key = hex "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex "000000000000004a00000000" in
  let plaintext =
    "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let want =
    hex
      "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
       f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
       07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
       5af90bbf74a35be6b40b8eedf2785e42874d"
  in
  Alcotest.(check string) "rfc8439 ciphertext" (Sha256.to_hex want)
    (Sha256.to_hex (Chacha20.encrypt ~key ~nonce ~counter:1 plaintext));
  Alcotest.(check string) "decrypt inverts" plaintext
    (Chacha20.encrypt ~key ~nonce ~counter:1 (Chacha20.encrypt ~key ~nonce ~counter:1 plaintext))

let test_chacha20_args () =
  Alcotest.(check_raises "bad key" (Invalid_argument "Chacha20.block: key must be 32 bytes")
      (fun () -> ignore (Chacha20.block ~key:"short" ~nonce:(String.make 12 '\x00') ~counter:0)));
  Alcotest.(check_raises "bad nonce" (Invalid_argument "Chacha20.block: nonce must be 12 bytes")
      (fun () -> ignore (Chacha20.block ~key:(String.make 32 '\x00') ~nonce:"x" ~counter:0)))

(* --- Constant-time compare --- *)

let test_ct () =
  Alcotest.(check bool) "equal" true (Ct.equal_string "abc" "abc");
  Alcotest.(check bool) "differs" false (Ct.equal_string "abc" "abd");
  Alcotest.(check bool) "length differs" false (Ct.equal_string "abc" "abcd");
  Alcotest.(check bool) "empty" true (Ct.equal_string "" "")

(* --- DRBG --- *)

let test_drbg_deterministic () =
  let a = Drbg.create ~seed:"seed-1" and b = Drbg.create ~seed:"seed-1" in
  Alcotest.(check string) "same seed, same stream" (Drbg.generate a 64) (Drbg.generate b 64);
  let c = Drbg.create ~seed:"seed-2" in
  Alcotest.(check bool) "different seed differs" true
    (Drbg.generate (Drbg.create ~seed:"seed-1") 64 <> Drbg.generate c 64)

let test_drbg_reseed () =
  let a = Drbg.create ~seed:"s" and b = Drbg.create ~seed:"s" in
  ignore (Drbg.generate a 16);
  ignore (Drbg.generate b 16);
  Drbg.reseed a "extra entropy";
  Alcotest.(check bool) "reseed changes stream" true (Drbg.generate a 32 <> Drbg.generate b 32)

let test_drbg_uniform () =
  let d = Drbg.create ~seed:"uniform" in
  for _ = 1 to 200 do
    let x = Drbg.uniform_int d 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7)
  done;
  Alcotest.(check_raises "zero bound" (Invalid_argument "Drbg.uniform_int: bound must be positive")
      (fun () -> ignore (Drbg.uniform_int d 0)))

(* --- AEAD --- *)

let aead_key = Sha256.digest "test key material"

let test_aead_roundtrip () =
  let nonce = String.make 12 '\x07' in
  let box = Aead.seal ~key:aead_key ~ad:"header" ~nonce "attack at dawn" in
  (match Aead.open_ ~key:aead_key ~ad:"header" box with
  | Some pt -> Alcotest.(check string) "roundtrip" "attack at dawn" pt
  | None -> Alcotest.fail "expected successful open");
  Alcotest.(check bool) "wrong ad fails" true (Aead.open_ ~key:aead_key ~ad:"other" box = None);
  Alcotest.(check bool) "wrong key fails" true
    (Aead.open_ ~key:(Sha256.digest "wrong") ~ad:"header" box = None)

let test_aead_tamper () =
  let nonce = String.make 12 '\x01' in
  let box = Aead.seal ~key:aead_key ~nonce "sensitive proxy key" in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  let tampered_ct = { box with Aead.ciphertext = flip box.Aead.ciphertext 0 } in
  let tampered_tag = { box with Aead.tag = flip box.Aead.tag 5 } in
  let tampered_nonce = { box with Aead.nonce = flip box.Aead.nonce 3 } in
  Alcotest.(check bool) "ct tamper" true (Aead.open_ ~key:aead_key tampered_ct = None);
  Alcotest.(check bool) "tag tamper" true (Aead.open_ ~key:aead_key tampered_tag = None);
  Alcotest.(check bool) "nonce tamper" true (Aead.open_ ~key:aead_key tampered_nonce = None)

let test_aead_encode () =
  let nonce = String.make 12 '\x02' in
  let box = Aead.seal ~key:aead_key ~nonce "wire me" in
  (match Aead.decode (Aead.encode box) with
  | Some box' -> (
      match Aead.open_ ~key:aead_key box' with
      | Some pt -> Alcotest.(check string) "decode roundtrip" "wire me" pt
      | None -> Alcotest.fail "open after decode")
  | None -> Alcotest.fail "decode");
  Alcotest.(check bool) "short decode fails" true (Aead.decode "short" = None)

(* --- RSA --- *)

let drbg = Drbg.create ~seed:"rsa tests"
let key = Rsa.generate drbg ~bits:512

let test_rsa_sign_verify () =
  let signature = Rsa.sign key "a proxy certificate body" in
  Alcotest.(check bool) "verifies" true
    (Rsa.verify key.Rsa.pub ~msg:"a proxy certificate body" ~signature);
  Alcotest.(check bool) "other message fails" false
    (Rsa.verify key.Rsa.pub ~msg:"another body" ~signature);
  let bad = Bytes.of_string signature in
  Bytes.set bad 10 (Char.chr (Char.code (Bytes.get bad 10) lxor 0x40));
  Alcotest.(check bool) "bitflip fails" false
    (Rsa.verify key.Rsa.pub ~msg:"a proxy certificate body" ~signature:(Bytes.to_string bad));
  Alcotest.(check bool) "wrong length fails" false
    (Rsa.verify key.Rsa.pub ~msg:"a proxy certificate body" ~signature:(signature ^ "x"))

let test_rsa_cross_key () =
  let key2 = Rsa.generate drbg ~bits:512 in
  let signature = Rsa.sign key "msg" in
  Alcotest.(check bool) "other key rejects" false
    (Rsa.verify key2.Rsa.pub ~msg:"msg" ~signature)

let test_rsa_encrypt () =
  let secret = "proxy key: 32 bytes of material!" in
  match Rsa.encrypt drbg key.Rsa.pub secret with
  | None -> Alcotest.fail "encrypt"
  | Some ct -> (
      (match Rsa.decrypt key ct with
      | Some pt -> Alcotest.(check string) "decrypt" secret pt
      | None -> Alcotest.fail "decrypt");
      let too_long = String.make 100 'x' in
      Alcotest.(check bool) "too long rejected" true (Rsa.encrypt drbg key.Rsa.pub too_long = None);
      let garbage = String.make (Rsa.modulus_bytes key.Rsa.pub) '\x7f' in
      Alcotest.(check bool) "garbage decrypt fails" true (Rsa.decrypt key garbage = None))

let test_rsa_pub_encoding () =
  match Rsa.public_of_bytes (Rsa.public_to_bytes key.Rsa.pub) with
  | None -> Alcotest.fail "decode public"
  | Some pub ->
      let signature = Rsa.sign key "check encoding" in
      Alcotest.(check bool) "decoded key verifies" true
        (Rsa.verify pub ~msg:"check encoding" ~signature);
      Alcotest.(check bool) "truncated fails" true (Rsa.public_of_bytes "\x00\x00" = None)

(* --- RSA-CRT compatibility ---

   The CRT fast path must be a pure optimisation: for any key the signature
   bytes must equal those of the retained reference path (plain d
   exponentiation), the fault-attack guard must mask a corrupted CRT half by
   falling back to the reference path, and an *unguarded* faulty CRT
   recombination must produce a signature that verification rejects. *)

module N = Bignum.Nat

let test_rsa_crt_byte_identical () =
  List.iter
    (fun (seed, bits) ->
      let d = Drbg.create ~seed in
      let key = Rsa.generate d ~bits in
      Alcotest.(check bool)
        (Printf.sprintf "%d-bit key has CRT params" bits)
        true (key.Rsa.crt <> None);
      let no_crt = { key with Rsa.crt = None } in
      if bits >= 512 then begin
        (* A 256-bit modulus is too small for a SHA-256 PKCS#1 signature. *)
        let msg = Printf.sprintf "crt compat %s/%d" seed bits in
        Alcotest.(check string)
          (Printf.sprintf "%d-bit CRT signature = reference" bits)
          (Rsa.sign_reference key msg) (Rsa.sign key msg);
        Alcotest.(check string)
          (Printf.sprintf "%d-bit CRT signature = plain-d" bits)
          (Rsa.sign no_crt msg) (Rsa.sign key msg)
      end;
      (* The CRT private op must also decrypt exactly like the plain path. *)
      let secret = String.sub (Sha256.digest seed) 0 16 in
      match Rsa.encrypt d key.Rsa.pub secret with
      | None -> Alcotest.fail "encrypt"
      | Some ct ->
          Alcotest.(check (option string))
            (Printf.sprintf "%d-bit CRT decrypt = plain-d decrypt" bits)
            (Rsa.decrypt no_crt ct) (Rsa.decrypt key ct);
          Alcotest.(check (option string))
            (Printf.sprintf "%d-bit CRT decrypt roundtrips" bits)
            (Some secret) (Rsa.decrypt key ct))
    [ ("crt-a", 256); ("crt-b", 256); ("crt-a", 512); ("crt-b", 512); ("crt-a", 1024) ]

let test_rsa_crt_fault_guard () =
  let d = Drbg.create ~seed:"crt-fault" in
  let key = Rsa.generate d ~bits:512 in
  let crt = Option.get key.Rsa.crt in
  (* Corrupt one CRT exponent: the consistency check must catch the bad
     recombination and fall back to the reference path, so the emitted
     signature is still correct and byte-identical. *)
  let bad_key = { key with Rsa.crt = Some { crt with Rsa.dq = N.add crt.Rsa.dq N.one } } in
  let msg = "signed under a faulted key" in
  let signature = Rsa.sign bad_key msg in
  Alcotest.(check string) "guard falls back to reference" (Rsa.sign_reference key msg) signature;
  Alcotest.(check bool) "guarded signature verifies" true
    (Rsa.verify key.Rsa.pub ~msg ~signature)

let test_rsa_crt_unguarded_fault_rejected () =
  let d = Drbg.create ~seed:"crt-bdl" in
  let key = Rsa.generate d ~bits:512 in
  let crt = Option.get key.Rsa.crt in
  let p = crt.Rsa.p and q = crt.Rsa.q and qinv = crt.Rsa.qinv in
  let msg = "Boneh-DeMillo-Lipton" in
  let good = Rsa.sign key msg in
  (* Simulate a fault in the mod-q half: recombine s mod p with (s+1) mod q.
     The result is still correct mod p but wrong mod q — exactly the shape a
     glitched CRT exponentiation produces. Verification must reject it. *)
  let s = N.of_bytes_be good in
  let m1 = N.rem s p and m2 = N.rem (N.add s N.one) q in
  let diff = N.rem (N.add m1 (N.sub p (N.rem m2 p))) p in
  let h = N.rem (N.mul qinv diff) p in
  let faulty = N.add m2 (N.mul h q) in
  let faulty_sig = N.to_bytes_be_padded (Rsa.modulus_bytes key.Rsa.pub) faulty in
  Alcotest.(check bool) "good signature verifies" true (Rsa.verify key.Rsa.pub ~msg ~signature:good);
  Alcotest.(check bool) "faulty CRT signature rejected" false
    (Rsa.verify key.Rsa.pub ~msg ~signature:faulty_sig)

(* --- Properties --- *)

let prop_sha_distinct =
  QCheck.Test.make ~name:"sha256 distinguishes distinct strings" ~count:300
    (QCheck.pair QCheck.string QCheck.string)
    (fun (a, b) -> a = b || Sha256.digest a <> Sha256.digest b)

let prop_aead_roundtrip =
  QCheck.Test.make ~name:"aead roundtrips arbitrary bytes" ~count:200
    (QCheck.pair QCheck.string QCheck.small_string)
    (fun (pt, ad) ->
      let d = Drbg.create ~seed:("nonce" ^ ad ^ pt) in
      let nonce = Drbg.generate d 12 in
      let box = Aead.seal ~key:aead_key ~ad ~nonce pt in
      Aead.open_ ~key:aead_key ~ad box = Some pt)

let prop_chacha_involution =
  QCheck.Test.make ~name:"chacha encrypt is an involution" ~count:200 QCheck.string (fun pt ->
      let key = Sha256.digest "k" and nonce = String.make 12 'n' in
      Chacha20.encrypt ~key ~nonce (Chacha20.encrypt ~key ~nonce pt) = pt)

let prop_ct_equal_iff =
  QCheck.Test.make ~name:"ct equal iff structurally equal" ~count:500
    (QCheck.pair QCheck.small_string QCheck.small_string)
    (fun (a, b) -> Ct.equal_string a b = (a = b))

let props =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sha_distinct; prop_aead_roundtrip; prop_chacha_involution; prop_ct_equal_iff ]

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ ("vectors", `Quick, test_sha256_vectors);
          ("incremental", `Quick, test_sha256_incremental) ] );
      ( "hmac",
        [ ("rfc4231 vectors", `Quick, test_hmac_vectors); ("verify", `Quick, test_hmac_verify) ]
      );
      ( "chacha20",
        [ ("rfc8439 vector", `Quick, test_chacha20_vector);
          ("argument validation", `Quick, test_chacha20_args) ] );
      ("ct", [ ("constant-time compare", `Quick, test_ct) ]);
      ( "drbg",
        [ ("deterministic", `Quick, test_drbg_deterministic);
          ("reseed", `Quick, test_drbg_reseed);
          ("uniform", `Quick, test_drbg_uniform) ] );
      ( "aead",
        [ ("roundtrip", `Quick, test_aead_roundtrip);
          ("tamper detection", `Quick, test_aead_tamper);
          ("wire encode", `Quick, test_aead_encode) ] );
      ( "rsa",
        [ ("sign/verify", `Slow, test_rsa_sign_verify);
          ("cross key", `Slow, test_rsa_cross_key);
          ("encrypt/decrypt", `Slow, test_rsa_encrypt);
          ("public key encoding", `Slow, test_rsa_pub_encoding);
          ("crt byte-identical", `Slow, test_rsa_crt_byte_identical);
          ("crt fault guard", `Slow, test_rsa_crt_fault_guard);
          ("crt unguarded fault rejected", `Slow, test_rsa_crt_unguarded_fault_rejected) ] );
      ("properties", props) ]
