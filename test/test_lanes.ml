(* The lane-parallel scheduler: byte-identical runs across domain counts,
   the metrics owner guard, and the eviction/hash-order determinism fixes
   that multi-domain execution depends on. *)

open Cluster

(* --- Sim.Lane: the bare scheduler --- *)

(* A token ring: lane 0 launches a token that hops lane-to-lane for a fixed
   number of hops. Per-lane logs live in an array each lane writes only its
   own cell of — the same isolation discipline the accounting lanes use —
   so the run is deterministic and the logs comparable across schedules. *)
let ring_once ~lanes ~domains ~hops =
  let logs = Array.make lanes [] in
  let step ~epoch ~lane ~inbox =
    List.concat_map
      (fun (src, payload) ->
        logs.(lane) <- Printf.sprintf "e%d from%d %s" epoch src payload :: logs.(lane);
        let k = Scanf.sscanf payload "tok-%d" Fun.id in
        if k >= hops then [] else [ ((lane + 1) mod lanes, Printf.sprintf "tok-%d" (k + 1)) ])
      inbox
    @ if epoch = 0 && lane = 0 then [ (1 mod lanes, "tok-0") ] else []
  in
  let o = Sim.Lane.run ~domains ~lanes ~min_epochs:1 ~step () in
  (o, Array.map List.rev logs)

let test_lane_token_ring () =
  let (o1, logs1) = ring_once ~lanes:3 ~domains:1 ~hops:10 in
  let (o3, logs3) = ring_once ~lanes:3 ~domains:3 ~hops:10 in
  Alcotest.(check int) "all hops delivered" 11 o1.Sim.Lane.delivered;
  Alcotest.(check int) "clean drain" 0 o1.Sim.Lane.stranded;
  Alcotest.(check bool) "outcomes agree" true (o1 = o3);
  Array.iteri
    (fun i l1 ->
      Alcotest.(check (list string)) (Printf.sprintf "lane %d log" i) l1 logs3.(i))
    logs1

let test_lane_rejects_self_message () =
  let step ~epoch:_ ~lane ~inbox:_ = [ (lane, "loop") ] in
  Alcotest.check_raises "self-addressed"
    (Invalid_argument "Lane.run: lane messaged itself") (fun () ->
      ignore (Sim.Lane.run ~domains:1 ~lanes:2 ~min_epochs:1 ~step ()))

(* --- Sim.Metrics: owner guard and canonical merge --- *)

let test_metrics_guard_blocks_foreign_domain () =
  let m = Sim.Metrics.create () in
  Sim.Metrics.guard_here m;
  Sim.Metrics.incr m "local.ok";
  let refused =
    Domain.join
      (Domain.spawn (fun () ->
           try
             Sim.Metrics.incr m "foreign.write";
             false
           with Failure _ -> true))
  in
  Alcotest.(check bool) "cross-domain write refused" true refused;
  Alcotest.(check int) "foreign write did not land" 0 (Sim.Metrics.get m "foreign.write");
  Sim.Metrics.unguard m;
  let allowed =
    Domain.join
      (Domain.spawn (fun () ->
           Sim.Metrics.incr m "foreign.write";
           true))
  in
  Alcotest.(check bool) "unguarded write allowed" true allowed;
  Alcotest.(check int) "unguarded write landed" 1 (Sim.Metrics.get m "foreign.write")

let test_metrics_merge_sum_and_fail () =
  let a = Sim.Metrics.create () and b = Sim.Metrics.create () in
  Sim.Metrics.add a "shared.count" 2;
  Sim.Metrics.add a "only.a" 5;
  Sim.Metrics.add b "shared.count" 3;
  Sim.Metrics.add b "only.b" 7;
  Sim.Metrics.observe b "lat" 40;
  Sim.Metrics.merge_into ~into:a b;
  Alcotest.(check int) "shared summed" 5 (Sim.Metrics.get a "shared.count");
  Alcotest.(check int) "b-only copied" 7 (Sim.Metrics.get a "only.b");
  (match Sim.Metrics.dist a "lat" with
  | Some d -> Alcotest.(check int) "dist cell pooled" 40 d.Sim.Metrics.sum
  | None -> Alcotest.fail "dist cell lost in merge");
  let c = Sim.Metrics.create () in
  Sim.Metrics.add c "shared.count" 1;
  match Sim.Metrics.merge_into ~on_conflict:`Fail ~into:a c with
  | () -> Alcotest.fail "`Fail merge accepted an overlapping counter"
  | exception Failure _ -> ()

(* The snapshot form every determinism gate compares is sorted by name, so
   two tables that reached the same counts through different insertion
   orders (hence different Hashtbl resize histories) render identically. *)
let test_metrics_snapshot_ignores_hash_history () =
  let keys = List.init 150 (Printf.sprintf "k.%03d") in
  let m1 = Sim.Metrics.create () and m2 = Sim.Metrics.create () in
  List.iter (fun k -> Sim.Metrics.incr m1 k) keys;
  List.iter (fun k -> Sim.Metrics.incr m2 k) (List.rev keys);
  Alcotest.(check bool) "snapshots byte-identical" true
    (Sim.Metrics.snapshot m1 = Sim.Metrics.snapshot m2);
  Alcotest.(check bool) "snapshot is sorted" true
    (let names = List.map fst (Sim.Metrics.snapshot m1) in
     names = List.sort String.compare names)

(* --- eviction tie-breaks: insertion order, not hash order --- *)

let test_replay_cache_evicts_oldest_on_tie () =
  let evictions = ref 0 in
  let c = Replay_cache.create ~capacity:3 ~on_evict:(fun () -> incr evictions) () in
  let record id = Result.get_ok (Replay_cache.record c ~now:0 ~expires:100 id) in
  record "a";
  record "b";
  record "c";
  record "d" (* all expiries equal: the tie must break toward oldest-inserted *);
  Alcotest.(check int) "one eviction" 1 !evictions;
  Alcotest.(check bool) "oldest insertion evicted" false (Replay_cache.seen c ~now:1 "a");
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " survives") true (Replay_cache.seen c ~now:1 id))
    [ "b"; "c"; "d" ]

let test_seq_tracker_evicts_oldest_on_tie () =
  let t = Seq_tracker.create ~capacity:3 () in
  let set key k = Seq_tracker.set_progress t ~now:0 ~expires:100 key k in
  set "s-a" 1;
  set "s-b" 1;
  set "s-c" 1;
  (* Re-advancing an existing key keeps its original insertion seq: it is
     the same logical sequence, not a fresh one, so it stays oldest. *)
  set "s-a" 2;
  set "s-d" 1;
  Alcotest.(check int) "oldest insertion evicted" 0 (Seq_tracker.progress t ~now:1 "s-a");
  List.iter
    (fun key ->
      Alcotest.(check int) (key ^ " survives") 1 (Seq_tracker.progress t ~now:1 key))
    [ "s-b"; "s-c"; "s-d" ]

let test_rpc_cache_evicts_oldest_on_tie () =
  let c = Secure_rpc.create_cache ~capacity:3 () in
  let seed auth_id =
    Secure_rpc.seed_response c ~now:0 ~auth_id ~expires:100 ~reply:("r-" ^ auth_id)
  in
  seed "a";
  seed "b";
  seed "c";
  seed "d";
  Alcotest.(check bool) "oldest insertion evicted" false (Secure_rpc.cached c ~auth_id:"a");
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " survives") true (Secure_rpc.cached c ~auth_id:id))
    [ "b"; "c"; "d" ]

(* --- the accounting lanes: determinism across domain counts --- *)

let strip_wall o = { o with Lanes.wall_s = 0. }

let lanes_cfg ~seed ~shards ~flavor =
  {
    Lanes.default with
    Lanes.seed;
    shards;
    domains = 1;
    epochs = 3;
    ops_per_epoch = 2;
    buyers = 2;
    flavor;
  }

let test_seq_gates_hold () =
  let o = Lanes.run { (lanes_cfg ~seed:"lane-test-seq" ~shards:2 ~flavor:Lanes.Seq) with Lanes.domains = 2 } in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) ("gate " ^ name) true ok)
    o.Lanes.seq_gates;
  Alcotest.(check bool) "conserved" true (o.Lanes.conserved = Ok ());
  Alcotest.(check int) "no double redemptions" 0 o.Lanes.double_redemptions

let prop_lanes_domains_agnostic =
  let print (s, shards, f) = Printf.sprintf "seed=%d shards=%d flavor=%d" s shards f in
  QCheck.Test.make ~count:4
    ~name:"lanes: domains=1 vs domains=N byte-identical (all flavors)"
    (QCheck.make ~print
       QCheck.Gen.(triple (int_range 0 999) (int_range 2 3) (int_range 0 2)))
    (fun (s, shards, f) ->
      let flavor = match f with 0 -> Lanes.Checks | 1 -> Lanes.Seq | _ -> Lanes.Load in
      let cfg = lanes_cfg ~seed:(Printf.sprintf "prop-%d" s) ~shards ~flavor in
      let a = Lanes.run cfg in
      let b = Lanes.run { cfg with Lanes.domains = shards } in
      if strip_wall a <> strip_wall b then
        QCheck.Test.fail_reportf "run diverged across domain counts (%s)"
          (print (s, shards, f));
      if a.Lanes.conserved <> Ok () then
        QCheck.Test.fail_reportf "conservation violated: %s"
          (match a.Lanes.conserved with Error e -> e | Ok () -> "");
      if a.Lanes.double_redemptions <> 0 then
        QCheck.Test.fail_reportf "%d double redemption(s)" a.Lanes.double_redemptions;
      true)

let () =
  Alcotest.run "lanes"
    [ ( "scheduler",
        [ ("token ring drains identically on 1 and 3 domains", `Quick, test_lane_token_ring);
          ("self-addressed message rejected", `Quick, test_lane_rejects_self_message) ] );
      ( "metrics",
        [ ("owner guard blocks foreign-domain writes", `Quick,
           test_metrics_guard_blocks_foreign_domain);
          ("merge sums or refuses overlap", `Quick, test_metrics_merge_sum_and_fail);
          ("snapshot independent of hash history", `Quick,
           test_metrics_snapshot_ignores_hash_history) ] );
      ( "eviction-order",
        [ ("replay cache ties break by insertion", `Quick, test_replay_cache_evicts_oldest_on_tie);
          ("seq tracker ties break by insertion", `Quick, test_seq_tracker_evicts_oldest_on_tie);
          ("rpc response cache ties break by insertion", `Quick,
           test_rpc_cache_evicts_oldest_on_tie) ] );
      ( "determinism",
        [ ("seq flavor gates hold on 2 domains", `Slow, test_seq_gates_hold) ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_lanes_domains_agnostic ]) ]
